// In-process tests for the saged_lint engine: every rule gets at least one
// fixture that triggers it and one where a justified suppression silences
// it. Fixtures are in-memory SourceFiles with realistic repo-relative
// paths (rule scoping keys off the path). Violation tokens below live
// inside string literals, which the engine's stripper blanks — so linting
// this test file itself stays clean.
#include "tools/lint_engine.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace saged::lint {
namespace {

std::vector<Finding> ByRule(const LintResult& result, const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : result.findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

TEST(LintTest, RuleNamesCoverTheCatalogue) {
  const auto& rules = RuleNames();
  EXPECT_EQ(rules.size(), 11u);
  for (const char* expected :
       {"no-raw-random", "no-adhoc-thread", "no-unchecked-result",
        "no-iostream-in-core", "include-hygiene", "no-untimed-stage",
        "lock-discipline", "executor-capture-lifetime",
        "no-blocking-in-io-loop", "no-unverified-simd", "bad-suppression"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), expected), rules.end())
        << expected;
  }
}

TEST(LintTest, CleanFixtureHasNoFindings) {
  LintResult r = RunLint({{"src/ml/clean.cc",
                           "namespace saged::ml {\n"
                           "int Add(int a, int b) { return a + b; }\n"
                           "}  // namespace saged::ml\n"}});
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.files_scanned, 1u);
  EXPECT_EQ(r.suppressed, 0u);
}

// --- no-raw-random ---------------------------------------------------------

TEST(LintTest, RawRandomFlagged) {
  LintResult r = RunLint({{"src/ml/sampler.cc",
                           "namespace saged::ml {\n"
                           "int Roll() { std::mt19937 gen(42); return 0; }\n"
                           "}\n"}});
  auto hits = ByRule(r, "no-raw-random");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2u);
  EXPECT_NE(hits[0].message.find("common/rng.h"), std::string::npos);
}

TEST(LintTest, RawRandomCallAndHeaderFlagged) {
  LintResult r = RunLint({{"src/core/seed.cc",
                           "#include <random>\n"
                           "namespace saged {\n"
                           "int S() { return rand(); }\n"
                           "}\n"}});
  EXPECT_EQ(ByRule(r, "no-raw-random").size(), 2u);  // include + call
}

TEST(LintTest, RawRandomAllowedInRngHeaderAndOutsideSrc) {
  LintResult r = RunLint(
      {{"src/common/rng.h",
        "#ifndef SAGED_COMMON_RNG_H_\n#define SAGED_COMMON_RNG_H_\n"
        "namespace saged { using Engine = std::mt19937; }\n"
        "#endif  // SAGED_COMMON_RNG_H_\n"},
       {"tests/some_test.cc", "std::mt19937 gen(1);\n"}});
  EXPECT_TRUE(ByRule(r, "no-raw-random").empty());
}

TEST(LintTest, RawRandomSuppressed) {
  LintResult r = RunLint(
      {{"src/ml/sampler.cc",
        "namespace saged::ml {\n"
        "// saged-lint: allow(no-raw-random): fixture proves suppression\n"
        "int Roll() { std::mt19937 gen(42); return 0; }\n"
        "}\n"}});
  EXPECT_TRUE(ByRule(r, "no-raw-random").empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// --- no-adhoc-thread -------------------------------------------------------

TEST(LintTest, AdhocThreadFlagged) {
  LintResult r = RunLint({{"src/core/par.cc",
                           "namespace saged {\n"
                           "void Go() { std::thread t([] {}); t.join(); }\n"
                           "}\n"}});
  auto hits = ByRule(r, "no-adhoc-thread");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("Executor::Shared()"), std::string::npos);
}

TEST(LintTest, AdhocThreadAllowedInCommon) {
  LintResult r = RunLint({{"src/common/executor.cc",
                           "namespace saged {\n"
                           "void Spawn() { std::thread t([] {}); t.join(); }\n"
                           "}\n"}});
  EXPECT_TRUE(ByRule(r, "no-adhoc-thread").empty());
}

TEST(LintTest, AdhocThreadSuppressedWithTrailingComment) {
  LintResult r = RunLint(
      {{"src/core/par.cc",
        "namespace saged {\n"
        "void Go() { std::async(f); }  "
        "// saged-lint: allow(no-adhoc-thread): fixture\n"
        "}\n"}});
  EXPECT_TRUE(ByRule(r, "no-adhoc-thread").empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// --- no-unchecked-result ---------------------------------------------------

constexpr char kApiHeader[] =
    "#ifndef SAGED_CORE_API_H_\n"
    "#define SAGED_CORE_API_H_\n"
    "namespace saged {\n"
    "Status DoWork();\n"
    "Result<int> Compute(int x);\n"
    "void Mixed();\n"
    "Status Mixed(int overload);\n"
    "}\n"
    "#endif  // SAGED_CORE_API_H_\n";

TEST(LintTest, DiscardedStatusFlagged) {
  LintResult r = RunLint({{"src/core/api.h", kApiHeader},
                          {"src/core/use.cc",
                           "namespace saged {\n"
                           "void Caller() {\n"
                           "  DoWork();\n"
                           "  Compute(3);\n"
                           "}\n"
                           "}\n"}});
  auto hits = ByRule(r, "no-unchecked-result");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 3u);
  EXPECT_EQ(hits[1].line, 4u);
}

TEST(LintTest, ConsumedStatusNotFlagged) {
  LintResult r = RunLint({{"src/core/api.h", kApiHeader},
                          {"src/core/use.cc",
                           "namespace saged {\n"
                           "Status Caller() {\n"
                           "  auto s = DoWork();\n"
                           "  if (!s.ok()) return s;\n"
                           "  return DoWork();\n"
                           "}\n"
                           "}\n"}});
  EXPECT_TRUE(ByRule(r, "no-unchecked-result").empty());
}

TEST(LintTest, VoidOverloadMakesNameAmbiguousAndSkipped) {
  // Mixed() has both a void and a Status overload; the token-level scanner
  // cannot resolve which one a call hits, so it must stay silent.
  LintResult r = RunLint({{"src/core/api.h", kApiHeader},
                          {"src/core/use.cc",
                           "namespace saged {\n"
                           "void Caller() { Mixed(); }\n"
                           "}\n"}});
  EXPECT_TRUE(ByRule(r, "no-unchecked-result").empty());
}

TEST(LintTest, DiscardedStatusSuppressed) {
  LintResult r = RunLint(
      {{"src/core/api.h", kApiHeader},
       {"src/core/use.cc",
        "namespace saged {\n"
        "void Caller() {\n"
        "  DoWork();  // saged-lint: allow(no-unchecked-result): fixture\n"
        "}\n"
        "}\n"}});
  EXPECT_TRUE(ByRule(r, "no-unchecked-result").empty());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintTest, StatusTypeMustBeNodiscard) {
  LintResult r = RunLint({{"src/common/status.h",
                           "#ifndef SAGED_COMMON_STATUS_H_\n"
                           "#define SAGED_COMMON_STATUS_H_\n"
                           "namespace saged {\n"
                           "class Status {};\n"
                           "template <typename T> class Result {};\n"
                           "}\n"
                           "#endif  // SAGED_COMMON_STATUS_H_\n"}});
  EXPECT_EQ(ByRule(r, "no-unchecked-result").size(), 2u);  // Status + Result
}

TEST(LintTest, NodiscardStatusPassesAudit) {
  LintResult r =
      RunLint({{"src/common/status.h",
                "#ifndef SAGED_COMMON_STATUS_H_\n"
                "#define SAGED_COMMON_STATUS_H_\n"
                "namespace saged {\n"
                "class [[nodiscard]] Status {};\n"
                "template <typename T> class [[nodiscard]] Result {};\n"
                "}\n"
                "#endif  // SAGED_COMMON_STATUS_H_\n"}});
  EXPECT_TRUE(ByRule(r, "no-unchecked-result").empty());
}

// --- no-iostream-in-core ---------------------------------------------------

TEST(LintTest, IostreamInCoreFlagged) {
  LintResult r = RunLint({{"src/data/dump.cc",
                           "namespace saged {\n"
                           "void Dump(int x) { std::cout << x; }\n"
                           "}\n"}});
  auto hits = ByRule(r, "no-iostream-in-core");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("SAGED_LOG"), std::string::npos);
}

TEST(LintTest, IostreamAllowedInLoggingAndOutsideSrc) {
  LintResult r =
      RunLint({{"src/common/logging.cc", "void W() { fprintf(stderr, x); }\n"},
               {"tools/saged_cli.cc", "int main() { std::cout << 1; }\n"}});
  EXPECT_TRUE(ByRule(r, "no-iostream-in-core").empty());
}

TEST(LintTest, IostreamSuppressed) {
  LintResult r = RunLint(
      {{"src/data/dump.cc",
        "namespace saged {\n"
        "// saged-lint: allow(no-iostream-in-core): fixture justification\n"
        "void Dump(int x) { std::cerr << x; }\n"
        "}\n"}});
  EXPECT_TRUE(ByRule(r, "no-iostream-in-core").empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// --- include-hygiene -------------------------------------------------------

constexpr char kPipelineHeader[] =
    "#ifndef SAGED_PIPELINE_STAGE_H_\n"
    "#define SAGED_PIPELINE_STAGE_H_\n"
    "namespace saged::pipeline {\n"
    "double RunStage(int x);\n"
    "}\n"
    "#endif  // SAGED_PIPELINE_STAGE_H_\n";

TEST(LintTest, WrongIncludeGuardFlagged) {
  LintResult r = RunLint({{"src/ml/bad.h",
                           "#ifndef WRONG_GUARD_H\n"
                           "#define WRONG_GUARD_H\n"
                           "#endif\n"}});
  auto hits = ByRule(r, "include-hygiene");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("SAGED_ML_BAD_H_"), std::string::npos);
}

TEST(LintTest, LayerInversionFlagged) {
  LintResult r = RunLint({{"src/pipeline/stage.h", kPipelineHeader},
                          {"src/ml/inv.cc",
                           "#include \"pipeline/stage.h\"\n"
                           "namespace saged::ml {}\n"}});
  auto hits = ByRule(r, "include-hygiene");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("layering inversion"), std::string::npos);
}

TEST(LintTest, DownwardIncludeAllowed) {
  LintResult r = RunLint(
      {{"src/common/status.h",
        "#ifndef SAGED_COMMON_STATUS_H_\n#define SAGED_COMMON_STATUS_H_\n"
        "namespace saged { class [[nodiscard]] Status {};\n"
        "template <typename T> class [[nodiscard]] Result {}; }\n"
        "#endif  // SAGED_COMMON_STATUS_H_\n"},
       {"src/ml/down.cc",
        "#include \"common/status.h\"\n"
        "namespace saged::ml {}\n"}});
  EXPECT_TRUE(ByRule(r, "include-hygiene").empty());
}

TEST(LintTest, UnresolvedQuotedIncludeFlagged) {
  LintResult r = RunLint({{"src/core/u.cc",
                           "#include \"core/missing.h\"\n"
                           "namespace saged {}\n"}});
  auto hits = ByRule(r, "include-hygiene");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("does not resolve"), std::string::npos);
}

TEST(LintTest, ServeMayIncludeCoreCommonData) {
  LintResult r = RunLint(
      {{"src/core/detector.h",
        "#ifndef SAGED_CORE_DETECTOR_H_\n#define SAGED_CORE_DETECTOR_H_\n"
        "namespace saged::core {}\n"
        "#endif  // SAGED_CORE_DETECTOR_H_\n"},
       {"src/data/table.h",
        "#ifndef SAGED_DATA_TABLE_H_\n#define SAGED_DATA_TABLE_H_\n"
        "namespace saged {}\n"
        "#endif  // SAGED_DATA_TABLE_H_\n"},
       {"src/serve/server.cc",
        "#include \"core/detector.h\"\n"
        "#include \"data/table.h\"\n"
        "namespace saged::serve {}\n"}});
  EXPECT_TRUE(ByRule(r, "include-hygiene").empty());
}

TEST(LintTest, ServeMustNotIncludePipeline) {
  // serve outranks pipeline, so the generic rank check passes — the
  // narrower serve allow-list is what catches it.
  LintResult r = RunLint({{"src/pipeline/stage.h", kPipelineHeader},
                          {"src/serve/server.cc",
                           "#include \"pipeline/stage.h\"\n"
                           "namespace saged::serve {}\n"}});
  auto hits = ByRule(r, "include-hygiene");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("thin transport"), std::string::npos);
}

TEST(LintTest, NothingInSrcMayIncludeServe) {
  LintResult r = RunLint(
      {{"src/serve/protocol.h",
        "#ifndef SAGED_SERVE_PROTOCOL_H_\n#define SAGED_SERVE_PROTOCOL_H_\n"
        "namespace saged::serve {}\n"
        "#endif  // SAGED_SERVE_PROTOCOL_H_\n"},
       {"src/pipeline/uses_serve.cc",
        "#include \"serve/protocol.h\"\n"
        "namespace saged::pipeline {}\n"}});
  auto hits = ByRule(r, "include-hygiene");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("layering inversion"), std::string::npos);
}

constexpr char kCoreHeader[] =
    "#ifndef SAGED_CORE_MATCHER_H_\n#define SAGED_CORE_MATCHER_H_\n"
    "namespace saged::core {}\n"
    "#endif  // SAGED_CORE_MATCHER_H_\n";

constexpr char kKbHeader[] =
    "#ifndef SAGED_KB_SHARD_STORE_H_\n#define SAGED_KB_SHARD_STORE_H_\n"
    "namespace saged::kb {}\n"
    "#endif  // SAGED_KB_SHARD_STORE_H_\n";

TEST(LintTest, KbMayIncludeCore) {
  LintResult r = RunLint({{"src/core/matcher.h", kCoreHeader},
                          {"src/kb/index.cc",
                           "#include \"core/matcher.h\"\n"
                           "namespace saged::kb {}\n"}});
  EXPECT_TRUE(ByRule(r, "include-hygiene").empty());
}

TEST(LintTest, KbMustNotIncludeBaselines) {
  // baselines is kb's rank peer: both the generic rank check (peers stay
  // mutually ignorant) and the narrower kb allow-list fire.
  LintResult r = RunLint(
      {{"src/baselines/raha.h",
        "#ifndef SAGED_BASELINES_RAHA_H_\n#define SAGED_BASELINES_RAHA_H_\n"
        "namespace saged::baselines {}\n"
        "#endif  // SAGED_BASELINES_RAHA_H_\n"},
       {"src/kb/index.cc",
        "#include \"baselines/raha.h\"\n"
        "namespace saged::kb {}\n"}});
  auto hits = ByRule(r, "include-hygiene");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_NE(hits[0].message.find("layering inversion"), std::string::npos);
  EXPECT_NE(hits[1].message.find("core engine's storage"), std::string::npos);
}

TEST(LintTest, BaselinesMustNotIncludeKb) {
  LintResult r = RunLint({{"src/kb/shard_store.h", kKbHeader},
                          {"src/baselines/uses_kb.cc",
                           "#include \"kb/shard_store.h\"\n"
                           "namespace saged::baselines {}\n"}});
  auto hits = ByRule(r, "include-hygiene");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("layering inversion"), std::string::npos);
}

TEST(LintTest, ServeMayIncludeKb) {
  LintResult r = RunLint({{"src/kb/shard_store.h", kKbHeader},
                          {"src/serve/server.cc",
                           "#include \"kb/shard_store.h\"\n"
                           "namespace saged::serve {}\n"}});
  EXPECT_TRUE(ByRule(r, "include-hygiene").empty());
}

TEST(LintTest, LayerInversionSuppressed) {
  LintResult r = RunLint(
      {{"src/pipeline/stage.h", kPipelineHeader},
       {"src/ml/inv.cc",
        "#include \"pipeline/stage.h\"  "
        "// saged-lint: allow(include-hygiene): fixture justification\n"
        "namespace saged::ml {}\n"}});
  EXPECT_TRUE(ByRule(r, "include-hygiene").empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// --- no-untimed-stage -------------------------------------------------------

TEST(LintTest, ExportedStageWithoutSpanFlagged) {
  LintResult r = RunLint({{"src/pipeline/stage.h", kPipelineHeader},
                          {"src/pipeline/stage.cc",
                           "#include \"pipeline/stage.h\"\n"
                           "namespace saged::pipeline {\n"
                           "double RunStage(int x) {\n"
                           "  return x * 2.0;\n"
                           "}\n"
                           "}  // namespace saged::pipeline\n"}});
  auto hits = ByRule(r, "no-untimed-stage");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3u);
  EXPECT_NE(hits[0].message.find("RunStage"), std::string::npos);
}

TEST(LintTest, StageWithSpanPasses) {
  LintResult r =
      RunLint({{"src/pipeline/stage.h", kPipelineHeader},
               {"src/pipeline/stage.cc",
                "#include \"pipeline/stage.h\"\n"
                "namespace saged::pipeline {\n"
                "double RunStage(int x) {\n"
                "  SAGED_TRACE_SPAN(\"pipeline/run_stage\");\n"
                "  return x * 2.0;\n"
                "}\n"
                "}  // namespace saged::pipeline\n"}});
  EXPECT_TRUE(ByRule(r, "no-untimed-stage").empty());
}

TEST(LintTest, AnonymousNamespaceHelperExempt) {
  LintResult r =
      RunLint({{"src/pipeline/stage.h", kPipelineHeader},
               {"src/pipeline/stage.cc",
                "#include \"pipeline/stage.h\"\n"
                "namespace saged::pipeline {\n"
                "namespace {\n"
                "double RunStage(int x) { return x; }  // shadowing helper\n"
                "}  // namespace\n"
                "double RunStage(int x) {\n"
                "  SAGED_TRACE_SPAN(\"pipeline/run_stage\");\n"
                "  return x * 2.0;\n"
                "}\n"
                "}  // namespace saged::pipeline\n"}});
  EXPECT_TRUE(ByRule(r, "no-untimed-stage").empty());
}

TEST(LintTest, MissingSpanSuppressed) {
  LintResult r = RunLint(
      {{"src/pipeline/stage.h", kPipelineHeader},
       {"src/pipeline/stage.cc",
        "#include \"pipeline/stage.h\"\n"
        "namespace saged::pipeline {\n"
        "// saged-lint: allow(no-untimed-stage): fixture justification\n"
        "double RunStage(int x) {\n"
        "  return x * 2.0;\n"
        "}\n"
        "}  // namespace saged::pipeline\n"}});
  EXPECT_TRUE(ByRule(r, "no-untimed-stage").empty());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintTest, UntimedStageMethodFlagged) {
  LintResult r = RunLint(
      {{"src/core/fixture_detector.cc",
        "namespace saged::core {\n"
        "Result<DetectionResult> Saged::DetectInMemory(const SagedConfig& c,\n"
        "                                              const Table& t,\n"
        "                                              const OracleFn& o) {\n"
        "  return Impl(c, t, o);\n"
        "}\n"
        "}  // namespace saged::core\n"}});
  auto hits = ByRule(r, "no-untimed-stage");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("Saged::DetectInMemory"), std::string::npos);
}

TEST(LintTest, TimedStageMethodPasses) {
  LintResult r = RunLint(
      {{"src/core/fixture_detector.cc",
        "namespace saged::core {\n"
        "Result<DetectionResult> Saged::DetectInMemory(const SagedConfig& c,\n"
        "                                              const Table& t,\n"
        "                                              const OracleFn& o) {\n"
        "  SAGED_TRACE_SPAN(\"detect\");\n"
        "  return Impl(c, t, o);\n"
        "}\n"
        "}  // namespace saged::core\n"}});
  EXPECT_TRUE(ByRule(r, "no-untimed-stage").empty());
}

TEST(LintTest, NonStageMethodExempt) {
  // Only the named stage entry points are gated; other methods — even span-
  // free ones in src/core — are not stages.
  LintResult r = RunLint(
      {{"src/core/fixture_detector.cc",
        "namespace saged::core {\n"
        "size_t Saged::KnowledgeBaseSize() const {\n"
        "  return kb_.size();\n"
        "}\n"
        "}  // namespace saged::core\n"}});
  EXPECT_TRUE(ByRule(r, "no-untimed-stage").empty());
}

// --- bad-suppression -------------------------------------------------------

TEST(LintTest, SuppressionWithoutJustificationRejected) {
  LintResult r = RunLint(
      {{"src/data/dump.cc",
        "namespace saged {\n"
        "void D(int x) { std::cout << x; }  "
        "// saged-lint: allow(no-iostream-in-core)\n"
        "}\n"}});
  // The malformed suppression is reported AND does not silence the finding.
  EXPECT_EQ(ByRule(r, "bad-suppression").size(), 1u);
  EXPECT_EQ(ByRule(r, "no-iostream-in-core").size(), 1u);
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(LintTest, SuppressionNamingUnknownRuleRejected) {
  LintResult r = RunLint(
      {{"src/data/dump.cc",
        "namespace saged {\n"
        "// saged-lint: allow(no-such-rule): reasonable-sounding excuse\n"
        "void D() {}\n"
        "}\n"}});
  auto hits = ByRule(r, "bad-suppression");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("no-such-rule"), std::string::npos);
}

TEST(LintTest, ProseMentionOfLinterIsNotADirective) {
  LintResult r = RunLint(
      {{"src/data/dump.cc",
        "namespace saged {\n"
        "// This comment merely discusses saged-lint: allow(x) syntax.\n"
        "void D() {}\n"
        "}\n"}});
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintTest, ViolationTokensInStringLiteralsIgnored) {
  LintResult r = RunLint(
      {{"src/data/doc.cc",
        "namespace saged {\n"
        "const char* kDoc = \"never write std::cout or std::mt19937\";\n"
        "const char* kRaw = R\"(std::thread is banned)\";\n"
        "}\n"}});
  EXPECT_TRUE(r.findings.empty());
}

// --- lock-discipline -------------------------------------------------------

TEST(LintTest, GuardedMemberTouchedWithoutLockFlagged) {
  LintResult r = RunLint(
      {{"src/core/registry.cc",
        "namespace saged::core {\n"
        "class Registry {\n"
        " public:\n"
        "  void Add(int v) {\n"
        "    std::lock_guard<std::mutex> lock(mu_);\n"
        "    total_ += v;\n"
        "  }\n"
        "  int Peek() const {\n"
        "    return total_;\n"
        "  }\n"
        " private:\n"
        "  std::mutex mu_;\n"
        "  int total_ SAGED_GUARDED_BY(mu_) = 0;\n"
        "};\n"
        "}  // namespace saged::core\n"}});
  auto hits = ByRule(r, "lock-discipline");
  ASSERT_EQ(hits.size(), 1u);  // Add() holds the lock; only Peek() fires
  EXPECT_EQ(hits[0].line, 9u);
  EXPECT_NE(hits[0].message.find("SAGED_GUARDED_BY(mu_)"), std::string::npos);
}

TEST(LintTest, RequiresAnnotationSeedsTheCalleeAndGatesCallers) {
  LintResult r = RunLint(
      {{"src/core/registry.cc",
        "namespace saged::core {\n"
        "class Registry {\n"
        " public:\n"
        "  void AddLocked(int v) SAGED_REQUIRES(mu_) { total_ += v; }\n"
        "  void Unsafe() { AddLocked(1); }\n"
        "  void Safe() {\n"
        "    std::lock_guard<std::mutex> lock(mu_);\n"
        "    AddLocked(2);\n"
        "  }\n"
        " private:\n"
        "  std::mutex mu_;\n"
        "  int total_ SAGED_GUARDED_BY(mu_) = 0;\n"
        "};\n"
        "}  // namespace saged::core\n"}});
  auto hits = ByRule(r, "lock-discipline");
  ASSERT_EQ(hits.size(), 1u);  // the body of AddLocked and Safe() are clean
  EXPECT_EQ(hits[0].line, 5u);
  EXPECT_NE(hits[0].message.find("SAGED_REQUIRES(mu_)"), std::string::npos);
}

TEST(LintTest, ExcludesViolatedWhenCallerHoldsTheMutex) {
  LintResult r = RunLint(
      {{"src/serve/queue.cc",
        "namespace saged::serve {\n"
        "class Queue {\n"
        " public:\n"
        "  void Drain() SAGED_EXCLUDES(mu_) {\n"
        "    std::lock_guard<std::mutex> lock(mu_);\n"
        "    pending_ = 0;\n"
        "  }\n"
        "  void Flush() {\n"
        "    std::lock_guard<std::mutex> lock(mu_);\n"
        "    Drain();\n"
        "  }\n"
        " private:\n"
        "  std::mutex mu_;\n"
        "  int pending_ SAGED_GUARDED_BY(mu_) = 0;\n"
        "};\n"
        "}  // namespace saged::serve\n"}});
  auto hits = ByRule(r, "lock-discipline");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 10u);
  EXPECT_NE(hits[0].message.find("SAGED_EXCLUDES(mu_)"), std::string::npos);
}

TEST(LintTest, MutexWithoutAnyGuardedMemberFlagged) {
  LintResult r = RunLint({{"src/ml/cache.cc",
                           "namespace saged::ml {\n"
                           "class Cache {\n"
                           " private:\n"
                           "  std::mutex mu_;\n"
                           "  int hits_ = 0;\n"
                           "};\n"
                           "}  // namespace saged::ml\n"}});
  auto hits = ByRule(r, "lock-discipline");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 4u);
  EXPECT_NE(hits[0].message.find("SAGED_GUARDED_BY"), std::string::npos);
}

TEST(LintTest, LockDisciplineSuppressedOnAccess) {
  LintResult r = RunLint(
      {{"src/core/registry.cc",
        "namespace saged::core {\n"
        "class Registry {\n"
        " public:\n"
        "  int Peek() const {\n"
        "    // saged-lint: allow(lock-discipline): racy read is acceptable "
        "for this metrics probe\n"
        "    return total_;\n"
        "  }\n"
        " private:\n"
        "  std::mutex mu_;\n"
        "  int total_ SAGED_GUARDED_BY(mu_) = 0;\n"
        "};\n"
        "}  // namespace saged::core\n"}});
  EXPECT_TRUE(ByRule(r, "lock-discipline").empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// --- executor-capture-lifetime ---------------------------------------------

TEST(LintTest, SubmitWithReferenceCaptureFlagged) {
  LintResult r = RunLint({{"src/pipeline/fanout.cc",
                           "namespace saged::pipeline {\n"
                           "void Fan(Executor& pool, int x) {\n"
                           "  pool.Submit([&x] { Touch(x); });\n"
                           "}\n"
                           "}  // namespace saged::pipeline\n"}});
  auto hits = ByRule(r, "executor-capture-lifetime");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3u);
  EXPECT_NE(hits[0].message.find("captures by reference"), std::string::npos);
}

TEST(LintTest, ValueCaptureAndParallelForExempt) {
  LintResult r = RunLint(
      {{"src/pipeline/fanout.cc",
        "namespace saged::pipeline {\n"
        "void Fan(Executor& pool, std::vector<int>& v) {\n"
        "  pool.Submit([v] { Consume(v); });\n"
        "  pool.ParallelFor(0, v.size(), [&](size_t i) { v[i] = 1; });\n"
        "}\n"
        "}  // namespace saged::pipeline\n"}});
  EXPECT_TRUE(ByRule(r, "executor-capture-lifetime").empty());
}

TEST(LintTest, ReferenceCaptureInTestsExempt) {
  LintResult r = RunLint({{"tests/pool_test.cc",
                           "namespace saged {\n"
                           "void Drive(Executor& pool, int x) {\n"
                           "  pool.Submit([&x] { Touch(x); });\n"
                           "}\n"
                           "}\n"}});
  EXPECT_TRUE(ByRule(r, "executor-capture-lifetime").empty());
}

TEST(LintTest, ReferenceCaptureSuppressed) {
  LintResult r = RunLint(
      {{"src/pipeline/fanout.cc",
        "namespace saged::pipeline {\n"
        "void Fan(Executor& pool, int x) {\n"
        "  // saged-lint: allow(executor-capture-lifetime): future joined "
        "before x leaves scope\n"
        "  pool.Submit([&x] { Touch(x); });\n"
        "}\n"
        "}  // namespace saged::pipeline\n"}});
  EXPECT_TRUE(ByRule(r, "executor-capture-lifetime").empty());
  EXPECT_EQ(r.suppressed, 1u);
}

// --- no-blocking-in-io-loop ------------------------------------------------

TEST(LintTest, BlockingCallInAnchoredFunctionFlagged) {
  LintResult r = RunLint({{"src/serve/pump.cc",
                           "namespace saged::serve {\n"
                           "// saged-lint: io-loop\n"
                           "void Pump(int fd) {\n"
                           "  char buf[8];\n"
                           "  ::read(fd, buf, sizeof(buf));\n"
                           "}\n"
                           "}  // namespace saged::serve\n"}});
  auto hits = ByRule(r, "no-blocking-in-io-loop");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 5u);
  EXPECT_NE(hits[0].message.find("'read()'"), std::string::npos);
}

TEST(LintTest, BlockingCallWithoutAnchorNotFlagged) {
  LintResult r = RunLint({{"src/serve/pump.cc",
                           "namespace saged::serve {\n"
                           "void Pump(int fd) {\n"
                           "  char buf[8];\n"
                           "  ::read(fd, buf, sizeof(buf));\n"
                           "}\n"
                           "}  // namespace saged::serve\n"}});
  EXPECT_TRUE(ByRule(r, "no-blocking-in-io-loop").empty());
}

TEST(LintTest, LambdaInsideAnchoredFunctionRunsElsewhereAndIsExempt) {
  LintResult r = RunLint(
      {{"src/serve/pump.cc",
        "namespace saged::serve {\n"
        "// saged-lint: io-loop\n"
        "void Pump(Executor& pool, Latch& latch) {\n"
        "  pool.Submit([latch] { latch.Wait(); });\n"
        "}\n"
        "}  // namespace saged::serve\n"}});
  EXPECT_TRUE(ByRule(r, "no-blocking-in-io-loop").empty());
}

TEST(LintTest, AnchoredFunctionWithOnlyPollIsClean) {
  // The anchor itself is a directive, not a violation: a function that
  // only uses the non-blocking primitives produces zero findings.
  LintResult r = RunLint({{"src/serve/pump.cc",
                           "namespace saged::serve {\n"
                           "// saged-lint: io-loop\n"
                           "void Pump() {\n"
                           "  ::poll(nullptr, 0, -1);\n"
                           "}\n"
                           "}  // namespace saged::serve\n"}});
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(LintTest, BlockingCallSuppressedWithJustification) {
  LintResult r = RunLint(
      {{"src/serve/pump.cc",
        "namespace saged::serve {\n"
        "// saged-lint: io-loop\n"
        "void Pump(int fd) {\n"
        "  char buf[8];\n"
        "  // saged-lint: allow(no-blocking-in-io-loop): fd is O_NONBLOCK, "
        "poll already reported it readable\n"
        "  ::read(fd, buf, sizeof(buf));\n"
        "}\n"
        "}  // namespace saged::serve\n"}});
  EXPECT_TRUE(ByRule(r, "no-blocking-in-io-loop").empty());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintTest, UnjustifiedSuppressionOfNewRuleStillRejected) {
  // The bad-suppression machinery covers the concurrency rules too: a
  // justification-free allow() is reported and silences nothing.
  LintResult r = RunLint(
      {{"src/serve/pump.cc",
        "namespace saged::serve {\n"
        "// saged-lint: io-loop\n"
        "void Pump(int fd) {\n"
        "  char buf[8];\n"
        "  // saged-lint: allow(no-blocking-in-io-loop)\n"
        "  ::read(fd, buf, sizeof(buf));\n"
        "}\n"
        "}  // namespace saged::serve\n"}});
  EXPECT_EQ(ByRule(r, "bad-suppression").size(), 1u);
  EXPECT_EQ(ByRule(r, "no-blocking-in-io-loop").size(), 1u);
  EXPECT_EQ(r.suppressed, 0u);
}

// --- report formats --------------------------------------------------------

TEST(LintTest, GccFormatHasPathLineRuleAndSummary) {
  LintResult r = RunLint({{"src/data/dump.cc",
                           "namespace saged {\n"
                           "void D(int x) { std::cout << x; }\n"
                           "}\n"}});
  std::string report = FormatGcc(r);
  EXPECT_NE(report.find("src/data/dump.cc:2: error: [no-iostream-in-core]"),
            std::string::npos);
  EXPECT_NE(report.find("1 violation(s)"), std::string::npos);
}

TEST(LintTest, JsonFormatIsWellFormed) {
  LintResult r = RunLint({{"src/data/dump.cc",
                           "namespace saged {\n"
                           "void D(int x) { std::cout << x; }\n"
                           "}\n"}});
  std::string json = FormatJson(r);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"no-iostream-in-core\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 2"), std::string::npos);
}

TEST(LintTest, SarifFormatIsWellFormed) {
  LintResult r = RunLint({{"src/data/dump.cc",
                           "namespace saged {\n"
                           "void D(int x) { std::cout << x; }\n"
                           "}\n"}});
  std::string sarif = FormatSarif(r);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"saged_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"no-iostream-in-core\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/data/dump.cc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 2"), std::string::npos);
  // Every rule in the catalogue is declared in the driver's rule list.
  for (const std::string& rule : RuleNames()) {
    EXPECT_NE(sarif.find("{\"id\": \"" + rule + "\"}"), std::string::npos)
        << rule;
  }
}

TEST(LintTest, SarifGoldenEnvelope) {
  // Exact-document pin for the clean-tree case; consumers key off this
  // envelope, so any change here is a (deliberate) format break.
  LintResult r = RunLint({{"src/ml/clean.cc", "namespace saged::ml {}\n"}});
  ASSERT_TRUE(r.findings.empty());
  const std::string expected =
      "{\n"
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"saged_lint\",\n"
      "          \"rules\": [\n"
      "            {\"id\": \"no-raw-random\"},\n"
      "            {\"id\": \"no-adhoc-thread\"},\n"
      "            {\"id\": \"no-unchecked-result\"},\n"
      "            {\"id\": \"no-iostream-in-core\"},\n"
      "            {\"id\": \"include-hygiene\"},\n"
      "            {\"id\": \"no-untimed-stage\"},\n"
      "            {\"id\": \"lock-discipline\"},\n"
      "            {\"id\": \"executor-capture-lifetime\"},\n"
      "            {\"id\": \"no-blocking-in-io-loop\"},\n"
      "            {\"id\": \"no-unverified-simd\"},\n"
      "            {\"id\": \"bad-suppression\"}\n"
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": []\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(FormatSarif(r), expected);
}

TEST(LintTest, FindingsAreSortedDeterministically) {
  LintResult r = RunLint({{"src/data/b.cc", "void B() { std::cout << 1; }\n"},
                          {"src/data/a.cc", "void A() { std::cout << 1; }\n"}});
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(r.findings[0].path, "src/data/a.cc");
  EXPECT_EQ(r.findings[1].path, "src/data/b.cc");
}

// --- no-unverified-simd ----------------------------------------------------

TEST(LintTest, SimdWithoutScalarSiblingFlagged) {
  LintResult r = RunLint({{"src/ml/fast_simd.cc",
                           "namespace saged::ml {\n"
                           "int SumLanesSimd(int x) { return x; }\n"
                           "}  // namespace saged::ml\n"}});
  auto hits = ByRule(r, "no-unverified-simd");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2u);
  EXPECT_NE(hits[0].message.find("SumLanesScalar"), std::string::npos);
  EXPECT_NE(hits[0].message.find("scalar reference"), std::string::npos);
}

TEST(LintTest, SimdWithScalarSiblingButNoParityTestFlagged) {
  LintResult r = RunLint(
      {{"src/ml/fast_simd.cc",
        "namespace saged::ml {\n"
        "int SumLanesSimd(int x) { return x; }\n"
        "}  // namespace saged::ml\n"},
       {"src/ml/fast.cc",
        "namespace saged::ml {\n"
        "int SumLanesScalar(int x) { return x; }\n"
        "}  // namespace saged::ml\n"}});
  auto hits = ByRule(r, "no-unverified-simd");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("parity fixture"), std::string::npos);
}

TEST(LintTest, ParityTestedSimdPasses) {
  LintResult r = RunLint(
      {{"src/ml/fast_simd.cc",
        "namespace saged::ml {\n"
        "int SumLanesSimd(int x) { return x; }\n"
        "}  // namespace saged::ml\n"},
       {"src/ml/fast.cc",
        "namespace saged::ml {\n"
        "int SumLanesScalar(int x) { return x; }\n"
        "}  // namespace saged::ml\n"},
       {"tests/fast_test.cc",
        "namespace saged::ml {\n"
        "void Check() { int a = SumLanesSimd(1); int b = SumLanesScalar(1); "
        "(void)a; (void)b; }\n"
        "}  // namespace saged::ml\n"}});
  EXPECT_TRUE(ByRule(r, "no-unverified-simd").empty());
}

TEST(LintTest, ScalarMentionOnlyInsideSimdUnitDoesNotCount) {
  // The sibling must live OUTSIDE the *_simd unit — a stray token in the
  // SIMD file itself (say a forward declaration) is not a scalar reference.
  LintResult r = RunLint({{"src/ml/fast_simd.cc",
                           "namespace saged::ml {\n"
                           "int SumLanesScalar(int x);\n"
                           "int SumLanesSimd(int x) { return x; }\n"
                           "}  // namespace saged::ml\n"}});
  auto hits = ByRule(r, "no-unverified-simd");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("SumLanesScalar"), std::string::npos);
}

TEST(LintTest, MisnamedFunctionInSimdUnitFlagged) {
  LintResult r = RunLint({{"src/ml/fast_simd.cc",
                           "namespace saged::ml {\n"
                           "int Accumulate(int x) { return x; }\n"
                           "}  // namespace saged::ml\n"}});
  auto hits = ByRule(r, "no-unverified-simd");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("'<Base>Simd'"), std::string::npos);
}

TEST(LintTest, AnonymousNamespaceHelperInSimdUnitExempt) {
  LintResult r = RunLint(
      {{"src/ml/fast_simd.cc",
        "namespace saged::ml {\n"
        "namespace {\n"
        "int Tail(int x) { return x; }\n"
        "}  // namespace\n"
        "int SumLanesSimd(int x) { return Tail(x); }\n"
        "}  // namespace saged::ml\n"},
       {"src/ml/fast.cc",
        "namespace saged::ml {\n"
        "int SumLanesScalar(int x) { return x; }\n"
        "}  // namespace saged::ml\n"},
       {"tests/fast_test.cc",
        "namespace saged::ml {\n"
        "void Check() { (void)SumLanesSimd(1); (void)SumLanesScalar(1); }\n"
        "}  // namespace saged::ml\n"}});
  EXPECT_TRUE(ByRule(r, "no-unverified-simd").empty());
}

TEST(LintTest, NonSimdUnitExemptFromSimdRule) {
  // Same misnamed definition, but the file is not a *_simd unit.
  LintResult r = RunLint({{"src/ml/fast.cc",
                           "namespace saged::ml {\n"
                           "int Accumulate(int x) { return x; }\n"
                           "}  // namespace saged::ml\n"}});
  EXPECT_TRUE(ByRule(r, "no-unverified-simd").empty());
}

TEST(LintTest, UnverifiedSimdSuppressed) {
  LintResult r = RunLint(
      {{"src/ml/fast_simd.cc",
        "namespace saged::ml {\n"
        "// saged-lint: allow(no-unverified-simd): bootstrap, parity test\n"
        "// lands in the same PR as the first caller\n"
        "int SumLanesSimd(int x) { return x; }\n"
        "}  // namespace saged::ml\n"}});
  EXPECT_TRUE(ByRule(r, "no-unverified-simd").empty());
  EXPECT_EQ(r.suppressed, 1u);
}

}  // namespace
}  // namespace saged::lint
