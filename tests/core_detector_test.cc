#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/detector.h"
#include "data/csv.h"
#include "datagen/datasets.h"

namespace saged::core {
namespace {

/// Small but realistic fixture: knowledge from adult+movies, detection on a
/// third dataset — the paper's default setup, shrunk for test speed.
class SagedFixture : public ::testing::Test {
 protected:
  static SagedConfig FastConfig() {
    SagedConfig config;
    config.w2v.epochs = 1;
    config.w2v.dim = 6;
    config.labeling_budget = 20;
    return config;
  }

  static datagen::Dataset Gen(const std::string& name, size_t rows) {
    datagen::MakeOptions opts;
    opts.rows = rows;
    auto ds = datagen::MakeDataset(name, opts);
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    return std::move(ds).value();
  }

  static Saged MakeLoaded(const SagedConfig& config) {
    Saged saged(config);
    auto adult = Gen("adult", 300);
    auto movies = Gen("movies", 300);
    EXPECT_TRUE(saged.AddHistoricalDataset(adult.dirty, adult.mask).ok());
    EXPECT_TRUE(saged.AddHistoricalDataset(movies.dirty, movies.mask).ok());
    return saged;
  }
};

TEST_F(SagedFixture, DetectsErrorsWellAboveChance) {
  Saged saged = MakeLoaded(FastConfig());
  auto beers = Gen("beers", 300);
  auto result = saged.Detect(beers.dirty, MaskOracle(beers.mask));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto score = beers.mask.Score(result->mask);
  // Precision and recall both clearly better than the ~16% base rate.
  EXPECT_GT(score.F1(), 0.5) << "P=" << score.Precision()
                             << " R=" << score.Recall();
  EXPECT_EQ(result->labeled_tuples, 20u);
  EXPECT_EQ(result->matched_models.size(), beers.dirty.NumCols());
  for (size_t n : result->matched_models) EXPECT_GT(n, 0u);
}

TEST_F(SagedFixture, RequiresKnowledgeBase) {
  Saged saged(FastConfig());
  auto beers = Gen("beers", 50);
  EXPECT_FALSE(saged.Detect(beers.dirty, MaskOracle(beers.mask)).ok());
}

TEST_F(SagedFixture, RejectsEmptyTable) {
  Saged saged = MakeLoaded(FastConfig());
  Table empty;
  ErrorMask mask;
  EXPECT_FALSE(saged.Detect(empty, MaskOracle(mask)).ok());
}

TEST_F(SagedFixture, CosineSimilarityAlsoWorks) {
  SagedConfig config = FastConfig();
  config.similarity = SimilarityMethod::kCosine;
  Saged saged = MakeLoaded(config);
  auto nasa = Gen("nasa", 250);
  auto result = saged.Detect(nasa.dirty, MaskOracle(nasa.mask));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // NASA at this fixture scale is the hardest case (all-numeric, history
  // from census/movie data); require clearly-above-chance, not peak, F1.
  EXPECT_GT(nasa.mask.Score(result->mask).F1(), 0.3);
}

TEST_F(SagedFixture, AugmentationPathRuns) {
  SagedConfig config = FastConfig();
  config.augmentation = AugmentationMethod::kIterativeRefinement;
  Saged saged = MakeLoaded(config);
  auto beers = Gen("beers", 200);
  auto result = saged.Detect(beers.dirty, MaskOracle(beers.mask));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(beers.mask.Score(result->mask).F1(), 0.3);
}

TEST_F(SagedFixture, ThreadCountDoesNotChangeResults) {
  auto beers = Gen("beers", 200);
  SagedConfig sequential = FastConfig();
  sequential.detect_threads = 1;
  SagedConfig parallel = FastConfig();
  parallel.detect_threads = 4;
  Saged a = MakeLoaded(sequential);
  Saged b = MakeLoaded(parallel);
  auto ra = a.Detect(beers.dirty, MaskOracle(beers.mask));
  auto rb = b.Detect(beers.dirty, MaskOracle(beers.mask));
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(ra->mask == rb->mask);
  EXPECT_EQ(ra->matched_models, rb->matched_models);
}

TEST_F(SagedFixture, DeterministicGivenSeed) {
  auto beers = Gen("beers", 150);
  SagedConfig config = FastConfig();
  Saged a = MakeLoaded(config);
  Saged b = MakeLoaded(config);
  auto ra = a.Detect(beers.dirty, MaskOracle(beers.mask));
  auto rb = b.Detect(beers.dirty, MaskOracle(beers.mask));
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_TRUE(ra->mask == rb->mask);
}

TEST_F(SagedFixture, DiagnosticsExplainEveryColumn) {
  Saged saged = MakeLoaded(FastConfig());
  auto beers = Gen("beers", 200);
  auto result = saged.Detect(beers.dirty, MaskOracle(beers.mask));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->diagnostics.size(), beers.dirty.NumCols());
  size_t total_flagged = 0;
  for (size_t j = 0; j < result->diagnostics.size(); ++j) {
    const auto& diag = result->diagnostics[j];
    EXPECT_EQ(diag.column, beers.dirty.column(j).name());
    EXPECT_EQ(diag.matched_sources.size(), result->matched_models[j]);
    for (const auto& src : diag.matched_sources) {
      EXPECT_NE(src.find('.'), std::string::npos) << src;
    }
    EXPECT_GT(diag.threshold, 0.0);
    // A fallback column whose labeled-clean votes reach 1.0 may calibrate
    // its cut just past 1 (flagging nothing), hence the epsilon.
    EXPECT_LE(diag.threshold, 1.0 + 1e-6);
    total_flagged += diag.flagged_cells;
  }
  EXPECT_EQ(total_flagged, result->mask.DirtyCount());
}

TEST_F(SagedFixture, ReportsPositiveDetectionTime) {
  Saged saged = MakeLoaded(FastConfig());
  auto nasa = Gen("nasa", 100);
  auto result = saged.Detect(nasa.dirty, MaskOracle(nasa.mask));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Run(DetectionRequest): the unified entry point every caller funnels
// through. Dispatch must be equivalent to the convenience wrappers, and
// invalid requests must be typed errors before any work starts.
// ---------------------------------------------------------------------------

TEST_F(SagedFixture, RunOnTableMatchesDetectWrapper) {
  Saged saged = MakeLoaded(FastConfig());
  auto beers = Gen("beers", 200);
  auto via_wrapper = saged.Detect(beers.dirty, MaskOracle(beers.mask));
  ASSERT_TRUE(via_wrapper.ok());
  auto via_run = saged.Run(
      DetectionRequest::ForTable(&beers.dirty, MaskOracle(beers.mask)));
  ASSERT_TRUE(via_run.ok()) << via_run.status().ToString();
  EXPECT_TRUE(via_run->mask == via_wrapper->mask)
      << "Run and Detect must be the same computation";
  EXPECT_EQ(via_run->labeled_tuples, via_wrapper->labeled_tuples);
}

TEST_F(SagedFixture, RunOnCsvMatchesInMemoryRun) {
  Saged saged = MakeLoaded(FastConfig());
  auto beers = Gen("beers", 200);
  const std::string path = ::testing::TempDir() + "run_dispatch_beers.csv";
  ASSERT_TRUE(WriteCsv(beers.dirty, path).ok());
  auto in_memory = saged.Run(
      DetectionRequest::ForTable(&beers.dirty, MaskOracle(beers.mask)));
  ASSERT_TRUE(in_memory.ok());
  // A CSV source without --stream loads the file and takes the same
  // in-memory path.
  auto from_csv =
      saged.Run(DetectionRequest::ForCsv(path, MaskOracle(beers.mask)));
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  EXPECT_TRUE(from_csv->mask == in_memory->mask);
  std::remove(path.c_str());
}

TEST_F(SagedFixture, RunValidatesBeforeWorking) {
  Saged saged = MakeLoaded(FastConfig());
  auto beers = Gen("beers", 50);

  // Null oracle.
  auto no_oracle = saged.Run(DetectionRequest::ForTable(&beers.dirty, {}));
  EXPECT_EQ(no_oracle.status().code(), StatusCode::kInvalidArgument);

  // Empty CSV path.
  auto no_path = saged.Run(DetectionRequest::ForCsv("", MaskOracle(beers.mask)));
  EXPECT_EQ(no_path.status().code(), StatusCode::kInvalidArgument);

  // Streaming requires a CSV source.
  DetectionOptions streamed;
  streamed.stream = true;
  auto stream_table = saged.Run(DetectionRequest::ForTable(
      &beers.dirty, MaskOracle(beers.mask), streamed));
  EXPECT_EQ(stream_table.status().code(), StatusCode::kInvalidArgument);

  // Degenerate options.
  DetectionOptions zero_block;
  zero_block.block_rows = 0;
  auto bad_block = saged.Run(DetectionRequest::ForTable(
      &beers.dirty, MaskOracle(beers.mask), zero_block));
  EXPECT_EQ(bad_block.status().code(), StatusCode::kInvalidArgument);
}

// A declared oracle shape that disagrees with the data must be a typed
// error *before the first oracle call*, on every execution path — without
// it, a too-small ground-truth mask is read out of bounds during labeling.
TEST_F(SagedFixture, RunRejectsMismatchedOracleShape) {
  Saged saged = MakeLoaded(FastConfig());
  auto beers = Gen("beers", 60);
  ErrorMask small = beers.mask.HeadRows(30);

  // In-memory path.
  auto in_memory =
      DetectionRequest::ForTable(&beers.dirty, MaskOracle(small));
  in_memory.set_oracle_shape(small.rows(), small.cols());
  auto rejected = saged.Run(in_memory);
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("oracle shape"),
            std::string::npos)
      << rejected.status().ToString();

  // Streaming path: the mismatch is only knowable after the first pass
  // fixes the data's shape, and must still beat any oracle query.
  const std::string path = ::testing::TempDir() + "oracle_shape_beers.csv";
  ASSERT_TRUE(WriteCsv(beers.dirty, path).ok());
  DetectionOptions streamed;
  streamed.stream = true;
  streamed.block_rows = 16;
  auto via_stream =
      DetectionRequest::ForCsv(path, MaskOracle(small), streamed);
  via_stream.set_oracle_shape(small.rows(), small.cols());
  auto stream_rejected = saged.Run(via_stream);
  EXPECT_EQ(stream_rejected.status().code(), StatusCode::kInvalidArgument);

  // A matching declared shape changes nothing.
  auto matching =
      DetectionRequest::ForTable(&beers.dirty, MaskOracle(beers.mask));
  matching.set_oracle_shape(beers.mask.rows(), beers.mask.cols());
  auto accepted = saged.Run(matching);
  EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
  std::remove(path.c_str());
}

TEST_F(SagedFixture, RunHonorsPerRequestConfigOverride) {
  Saged saged = MakeLoaded(FastConfig());
  auto beers = Gen("beers", 200);
  auto request =
      DetectionRequest::ForTable(&beers.dirty, MaskOracle(beers.mask));
  SagedConfig smaller = FastConfig();
  smaller.labeling_budget = 8;
  request.set_config(smaller);
  auto result = saged.Run(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->labeled_tuples, 8u);
  // The engine's own config is untouched.
  EXPECT_EQ(saged.config().labeling_budget, 20u);
}

/// Every labeling strategy must run end to end and beat chance.
class StrategySweep : public ::testing::TestWithParam<LabelingStrategy> {};

TEST_P(StrategySweep, EndToEnd) {
  SagedConfig config;
  config.w2v.epochs = 1;
  config.w2v.dim = 6;
  config.labeling = GetParam();
  config.labeling_budget = 20;
  datagen::MakeOptions opts;
  opts.rows = 250;
  auto adult = datagen::MakeDataset("adult", opts);
  auto flights = datagen::MakeDataset("flights", opts);
  ASSERT_TRUE(adult.ok());
  ASSERT_TRUE(flights.ok());
  Saged saged(config);
  ASSERT_TRUE(saged.AddHistoricalDataset(adult->dirty, adult->mask).ok());
  auto result = saged.Detect(flights->dirty, MaskOracle(flights->mask));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(flights->mask.Score(result->mask).F1(), 0.35)
      << LabelingStrategyName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategySweep,
                         ::testing::Values(LabelingStrategy::kRandom,
                                           LabelingStrategy::kHeuristic,
                                           LabelingStrategy::kClustering,
                                           LabelingStrategy::kActiveLearning));

}  // namespace
}  // namespace saged::core
