#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/gaussian_mixture.h"
#include "ml/knn.h"
#include "ml/knn_shapley.h"
#include "ml/metrics.h"

namespace saged::ml {
namespace {

// --- KNN ---------------------------------------------------------------------

TEST(KnnTest, NearestNeighborsVote) {
  Matrix x = Matrix::FromRows({{0.0}, {0.1}, {0.2}, {10.0}, {10.1}, {10.2}});
  std::vector<int> y = {0, 0, 0, 1, 1, 1};
  KnnClassifier knn(3);
  ASSERT_TRUE(knn.Fit(x, y).ok());
  Matrix queries = Matrix::FromRows({{0.05}, {10.05}});
  auto pred = knn.Predict(queries);
  EXPECT_EQ(pred[0], 0);
  EXPECT_EQ(pred[1], 1);
}

TEST(KnnTest, ProbaIsVoteFraction) {
  Matrix x = Matrix::FromRows({{0.0}, {1.0}, {2.0}});
  std::vector<int> y = {0, 1, 1};
  KnnClassifier knn(3);
  ASSERT_TRUE(knn.Fit(x, y).ok());
  Matrix q = Matrix::FromRows({{1.0}});
  auto proba = knn.PredictProba(q);
  EXPECT_NEAR(proba[0], 2.0 / 3.0, 1e-12);
}

TEST(KnnTest, KClampedToTrainingSize) {
  Matrix x = Matrix::FromRows({{0.0}, {1.0}});
  KnnClassifier knn(10);
  ASSERT_TRUE(knn.Fit(x, {0, 1}).ok());
  auto proba = knn.PredictProba(x);
  EXPECT_NEAR(proba[0], 0.5, 1e-12);
}

// --- KNN-Shapley -------------------------------------------------------------

TEST(KnnShapleyTest, HelpfulPointsScoreHigher) {
  // Train: two points of class 1 near the validation point, two of class 0
  // far away. Validation label is 1: near matching points should carry the
  // highest Shapley value.
  Matrix train = Matrix::FromRows({{0.0}, {0.2}, {5.0}, {6.0}});
  std::vector<int> train_y = {1, 1, 0, 0};
  Matrix val = Matrix::FromRows({{0.1}});
  std::vector<int> val_y = {1};
  auto values = KnnShapley(train, train_y, val, val_y, 2);
  ASSERT_EQ(values.size(), 4u);
  EXPECT_GT(values[0], values[2]);
  EXPECT_GT(values[1], values[3]);
}

TEST(KnnShapleyTest, EfficiencyProperty) {
  // Shapley values of all training points sum to the utility of the full
  // set: the kNN accuracy on the validation point (here 1.0 or 0.0 per
  // point, averaged).
  Matrix train = Matrix::FromRows({{0.0}, {1.0}, {2.0}, {3.0}});
  std::vector<int> train_y = {1, 0, 1, 0};
  Matrix val = Matrix::FromRows({{0.1}, {2.9}});
  std::vector<int> val_y = {1, 0};
  size_t k = 1;
  auto values = KnnShapley(train, train_y, val, val_y, k);
  double sum = 0.0;
  for (double v : values) sum += v;
  // 1-NN of 0.1 is point 0 (label 1, correct); 1-NN of 2.9 is point 3
  // (label 0, correct) -> utility = 1.0.
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(KnnShapleyTest, EmptyInputsSafe) {
  auto values = KnnShapley(Matrix(), {}, Matrix(), {}, 3);
  EXPECT_TRUE(values.empty());
}

class KnnShapleySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(KnnShapleySweep, SumEqualsUtilityForAnyK) {
  Rng rng(100 + GetParam());
  Matrix train;
  std::vector<int> train_y;
  for (int i = 0; i < 30; ++i) {
    int label = rng.Bernoulli(0.5) ? 1 : 0;
    std::vector<double> row = {label * 4.0 + rng.Normal(0, 1.0)};
    train.AppendRow(row);
    train_y.push_back(label);
  }
  Matrix val;
  std::vector<int> val_y;
  for (int i = 0; i < 5; ++i) {
    int label = rng.Bernoulli(0.5) ? 1 : 0;
    std::vector<double> row = {label * 4.0 + rng.Normal(0, 1.0)};
    val.AppendRow(row);
    val_y.push_back(label);
  }
  size_t k = GetParam();
  auto values = KnnShapley(train, train_y, val, val_y, k);
  // Efficiency: sum of values equals mean kNN match fraction over val.
  double utility = 0.0;
  for (size_t v = 0; v < val_y.size(); ++v) {
    std::vector<std::pair<double, size_t>> order(train_y.size());
    for (size_t i = 0; i < train_y.size(); ++i) {
      order[i] = {EuclideanDistance(val.Row(v), train.Row(i)), i};
    }
    std::sort(order.begin(), order.end());
    double match = 0.0;
    for (size_t j = 0; j < k && j < order.size(); ++j) {
      match += train_y[order[j].second] == val_y[v] ? 1.0 : 0.0;
    }
    utility += match / static_cast<double>(std::min(k, order.size()));
  }
  utility /= static_cast<double>(val_y.size());
  double sum = 0.0;
  for (double v : values) sum += v;
  EXPECT_NEAR(sum, utility, 1e-9) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnShapleySweep, ::testing::Values(1, 3, 5, 10));

// --- Gaussian mixture --------------------------------------------------------

TEST(GaussianMixtureTest, RecoversTwoModes) {
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 400; ++i) values.push_back(rng.Normal(0.0, 0.5));
  for (int i = 0; i < 400; ++i) values.push_back(rng.Normal(10.0, 0.5));
  GaussianMixture1D gmm(2, 100, 3);
  ASSERT_TRUE(gmm.Fit(values).ok());
  auto means = gmm.means();
  std::sort(means.begin(), means.end());
  EXPECT_NEAR(means[0], 0.0, 0.3);
  EXPECT_NEAR(means[1], 10.0, 0.3);
}

TEST(GaussianMixtureTest, OutliersScoreLow) {
  Rng rng(25);
  std::vector<double> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.Normal(5.0, 1.0));
  GaussianMixture1D gmm(2, 60, 5);
  ASSERT_TRUE(gmm.Fit(values).ok());
  auto inlier_ll = gmm.ScoreSamples({5.0});
  auto outlier_ll = gmm.ScoreSamples({500.0});
  EXPECT_GT(inlier_ll[0], outlier_ll[0]);
}

TEST(GaussianMixtureTest, WeightsSumToOne) {
  Rng rng(27);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.Uniform(0, 100));
  GaussianMixture1D gmm(3, 50, 7);
  ASSERT_TRUE(gmm.Fit(values).ok());
  double sum = 0.0;
  for (double w : gmm.weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GaussianMixtureTest, RejectsEmpty) {
  GaussianMixture1D gmm(2);
  EXPECT_FALSE(gmm.Fit({}).ok());
}

TEST(GaussianMixtureTest, SingleValueDegenerate) {
  GaussianMixture1D gmm(2);
  ASSERT_TRUE(gmm.Fit({3.0}).ok());
  EXPECT_GT(gmm.Pdf(3.0), 0.0);
}

}  // namespace
}  // namespace saged::ml
