// Cross-configuration sweeps over the Saged facade: every (similarity,
// meta-model, augmentation) combination must run end to end and stay above
// chance — the guarantee that no config knob silently breaks detection.

#include <tuple>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "datagen/datasets.h"

namespace saged::core {
namespace {

struct SweepCase {
  SimilarityMethod similarity;
  ModelType meta_model;
  AugmentationMethod augmentation;
};

class ConfigSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static const datagen::Dataset& Adult() {
    static auto& ds = *new datagen::Dataset([] {
      datagen::MakeOptions opts;
      opts.rows = 250;
      return std::move(datagen::MakeDataset("adult", opts)).value();
    }());
    return ds;
  }
  static const datagen::Dataset& Flights() {
    static auto& ds = *new datagen::Dataset([] {
      datagen::MakeOptions opts;
      opts.rows = 250;
      return std::move(datagen::MakeDataset("flights", opts)).value();
    }());
    return ds;
  }
};

TEST_P(ConfigSweep, EndToEndAboveChance) {
  const SweepCase& c = GetParam();
  SagedConfig config;
  config.w2v.epochs = 1;
  config.w2v.dim = 6;
  config.labeling_budget = 20;
  config.similarity = c.similarity;
  config.meta_model = c.meta_model;
  config.augmentation = c.augmentation;
  Saged saged(config);
  ASSERT_TRUE(saged.AddHistoricalDataset(Adult().dirty, Adult().mask).ok());
  auto result = saged.Detect(Flights().dirty, MaskOracle(Flights().mask));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  double f1 = Flights().mask.Score(result->mask).F1();
  EXPECT_GT(f1, 0.35) << SimilarityMethodName(c.similarity) << "/"
                      << ModelTypeName(c.meta_model) << "/"
                      << AugmentationMethodName(c.augmentation);
}

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (auto sim : {SimilarityMethod::kCosine, SimilarityMethod::kClustering}) {
    for (auto model :
         {ModelType::kRandomForest, ModelType::kGradientBoosting,
          ModelType::kLogisticRegression}) {
      for (auto aug : {AugmentationMethod::kNone, AugmentationMethod::kRandom,
                       AugmentationMethod::kIterativeRefinement}) {
        cases.push_back({sim, model, aug});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ConfigSweep, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(SimilarityMethodName(info.param.similarity)) + "_" +
             ModelTypeName(info.param.meta_model) + "_" +
             AugmentationMethodName(info.param.augmentation);
    });

// Feature toggles: every single-family configuration must still work (the
// ablation bench measures quality; this guards against crashes / NaNs).
class ToggleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ToggleSweep, RunsWithAnyFeatureFamilyDisabled) {
  SagedConfig config;
  config.w2v.epochs = 1;
  config.w2v.dim = 6;
  config.labeling_budget = 15;
  switch (GetParam()) {
    case 0:
      config.use_metadata_features = false;
      break;
    case 1:
      config.use_w2v_features = false;
      break;
    case 2:
      config.use_tfidf_features = false;
      break;
  }
  datagen::MakeOptions opts;
  opts.rows = 200;
  auto adult = datagen::MakeDataset("adult", opts);
  auto beers = datagen::MakeDataset("beers", opts);
  ASSERT_TRUE(adult.ok());
  ASSERT_TRUE(beers.ok());
  Saged saged(config);
  ASSERT_TRUE(saged.AddHistoricalDataset(adult->dirty, adult->mask).ok());
  auto result = saged.Detect(beers->dirty, MaskOracle(beers->mask));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(beers->mask.Score(result->mask).F1(), 0.2) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Families, ToggleSweep, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace saged::core
