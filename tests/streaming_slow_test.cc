// Big-row streaming sweeps, registered under the `slow` CTest label: the
// byte-identity and memory claims of the out-of-core path at sizes where
// blocking actually matters (many blocks per pass, reservoir far from
// trivial chunk geometry). The quick wall lives in streaming_test.cc.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "core/detector.h"
#include "data/csv.h"
#include "datagen/datasets.h"

namespace saged {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

datagen::Dataset Gen(const std::string& name, size_t rows) {
  datagen::MakeOptions opts;
  opts.rows = rows;
  auto ds = datagen::MakeDataset(name, opts);
  EXPECT_TRUE(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

core::SagedConfig FastConfig() {
  core::SagedConfig config;
  config.w2v.epochs = 1;
  config.w2v.dim = 6;
  config.labeling_budget = 20;
  return config;
}

core::Saged MakeLoaded(const core::SagedConfig& config) {
  core::Saged saged(config);
  auto adult = Gen("adult", 250);
  auto movies = Gen("movies", 250);
  EXPECT_TRUE(saged.AddHistoricalDataset(adult.dirty, adult.mask).ok());
  EXPECT_TRUE(saged.AddHistoricalDataset(movies.dirty, movies.mask).ok());
  return saged;
}

TEST(StreamingSlowTest, BlockReaderParityOnManyBlockFile) {
  // A generated table big enough for hundreds of blocks and thousands of
  // chunk refills must decode identically to the one-shot reader.
  auto ds = Gen("soccer", 60000);
  std::string path = TempPath("slow_reader.csv");
  ASSERT_TRUE(WriteCsv(ds.dirty, path).ok());
  auto expected = ReadCsv(path);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  CsvBlockReader reader(path, /*block_rows=*/777, {}, /*chunk_bytes=*/4096);
  ASSERT_TRUE(reader.Open().ok());
  ASSERT_EQ(reader.column_names(), expected->ColumnNames());
  CsvBlock block;
  size_t row = 0;
  while (true) {
    auto more = reader.Next(&block);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ASSERT_EQ(block.first_row, row);
    for (size_t i = 0; i < block.rows(); ++i) {
      for (size_t j = 0; j < block.columns.size(); ++j) {
        ASSERT_EQ(block.columns[j][i], expected->cell(row + i, j))
            << "cell (" << row + i << "," << j << ")";
      }
    }
    row += block.rows();
  }
  EXPECT_EQ(row, expected->NumRows());
}

TEST(StreamingSlowTest, ByteIdentityAndMemoryAtScale) {
  const size_t kRows = 60000;     // 3x the reservoir capacity: subsampling on
  const size_t kBlockRows = 7500; // 8 blocks per pass
  auto ds = Gen("flights", kRows);
  std::string path = TempPath("slow_stream.csv");
  ASSERT_TRUE(WriteCsv(ds.dirty, path).ok());
  auto reparsed = ReadCsv(path);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();

  core::Saged saged = MakeLoaded(FastConfig());

  // Streamed first from a small base, in-memory second: with a working
  // peak-RSS rewind each phase's watermark is attributable to that phase.
  bool rss_ok = telemetry::TryResetPeakRss();
  core::DetectionOptions options;
  options.block_rows = kBlockRows;
  auto streamed = saged.DetectStream(path, core::MaskOracle(ds.mask), options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  uint64_t stream_peak = telemetry::PeakRssBytes();

  rss_ok = telemetry::TryResetPeakRss() && rss_ok;
  auto reference = saged.Detect(*reparsed, core::MaskOracle(ds.mask));
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  uint64_t inmem_peak = telemetry::PeakRssBytes();

  // The headline contract: byte-identical predictions at scale.
  EXPECT_TRUE(streamed->mask == reference->mask);
  EXPECT_EQ(streamed->labeled_tuples, reference->labeled_tuples);
  EXPECT_EQ(streamed->matched_models, reference->matched_models);
  EXPECT_EQ(ds.mask.Score(streamed->mask).F1(),
            ds.mask.Score(reference->mask).F1());

  // Memory: the streamed pass must not out-consume the in-memory pass.
  // (Only checkable where the kernel honours the clear_refs rewind; the
  // strict 35%-of-in-memory budget is measured out-of-process by the
  // fig-15 streamed sweep, where allocator retention cannot blur phases.)
  if (rss_ok) {
    EXPECT_LE(stream_peak, inmem_peak)
        << "stream peak " << stream_peak << " vs in-memory " << inmem_peak;
  }
}

}  // namespace
}  // namespace saged
