#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/matrix.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/word2vec.h"

namespace saged::text {
namespace {

// --- Tokenizer ---------------------------------------------------------------

TEST(TokenizerTest, SplitsAndLowercases) {
  auto toks = WordTokens("Senior Software-Engineer III");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "senior");
  EXPECT_EQ(toks[1], "software");
  EXPECT_EQ(toks[2], "engineer");
  EXPECT_EQ(toks[3], "iii");
}

TEST(TokenizerTest, KeepsDigits) {
  auto toks = WordTokens("route 66");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1], "66");
}

TEST(TokenizerTest, EmptyValue) {
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("---").empty());
}

TEST(TokenizerTest, TupleTokensConcatenates) {
  auto toks = TupleTokens({"Bob Johnson", "35", "PhD"});
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "bob");
  EXPECT_EQ(toks[3], "phd");
}

// --- Word2Vec ----------------------------------------------------------------

std::vector<std::vector<std::string>> ToyCorpus() {
  // "alpha" and "beta" always co-occur; "gamma" and "delta" always co-occur;
  // the two pairs never mix.
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 120; ++i) {
    docs.push_back({"alpha", "beta", "alpha", "beta"});
    docs.push_back({"gamma", "delta", "gamma", "delta"});
  }
  return docs;
}

TEST(Word2VecTest, LearnsCooccurrence) {
  Word2VecOptions opts;
  opts.dim = 8;
  opts.epochs = 10;
  Word2Vec w2v(opts, 42);
  ASSERT_TRUE(w2v.Train(ToyCorpus()).ok());
  EXPECT_EQ(w2v.VocabSize(), 4u);
  auto alpha = w2v.Embed("alpha");
  auto beta = w2v.Embed("beta");
  auto gamma = w2v.Embed("gamma");
  // Co-occurring words end up more similar than non-co-occurring ones.
  double sim_ab = ml::CosineSimilarity(alpha, beta);
  double sim_ag = ml::CosineSimilarity(alpha, gamma);
  EXPECT_GT(sim_ab, sim_ag);
}

TEST(Word2VecTest, OovIsZeroVector) {
  Word2Vec w2v;
  ASSERT_TRUE(w2v.Train(ToyCorpus()).ok());
  auto v = w2v.Embed("unknown_token");
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Word2VecTest, EmbedValueAveragesTokens) {
  Word2Vec w2v;
  ASSERT_TRUE(w2v.Train(ToyCorpus()).ok());
  auto alpha = w2v.Embed("alpha");
  auto beta = w2v.Embed("beta");
  auto both = w2v.EmbedValue("Alpha Beta");
  for (size_t i = 0; i < both.size(); ++i) {
    EXPECT_NEAR(both[i], (alpha[i] + beta[i]) / 2.0, 1e-12);
  }
}

TEST(Word2VecTest, EmptyCorpusSafe) {
  Word2Vec w2v;
  ASSERT_TRUE(w2v.Train({}).ok());
  EXPECT_EQ(w2v.VocabSize(), 0u);
  auto v = w2v.EmbedValue("anything");
  EXPECT_EQ(v.size(), w2v.dim());
}

TEST(Word2VecTest, Deterministic) {
  Word2Vec a(Word2VecOptions{}, 7);
  Word2Vec b(Word2VecOptions{}, 7);
  ASSERT_TRUE(a.Train(ToyCorpus()).ok());
  ASSERT_TRUE(b.Train(ToyCorpus()).ok());
  EXPECT_EQ(a.Embed("alpha"), b.Embed("alpha"));
}

TEST(Word2VecTest, DocumentCapRespected) {
  Word2VecOptions opts;
  opts.max_documents = 10;
  Word2Vec w2v(opts, 3);
  ASSERT_TRUE(w2v.Train(ToyCorpus()).ok());
  EXPECT_GT(w2v.VocabSize(), 0u);  // still trains on the sample
}

// --- Char TF-IDF --------------------------------------------------------------

TEST(CharTfidfTest, VocabularyInFirstSeenOrder) {
  CharTfidf tfidf;
  ASSERT_TRUE(tfidf.Fit({"ab", "bc"}).ok());
  ASSERT_EQ(tfidf.vocabulary().size(), 3u);
  EXPECT_EQ(tfidf.vocabulary()[0], 'a');
  EXPECT_EQ(tfidf.vocabulary()[1], 'b');
  EXPECT_EQ(tfidf.vocabulary()[2], 'c');
}

TEST(CharTfidfTest, DocFrequency) {
  CharTfidf tfidf;
  ASSERT_TRUE(tfidf.Fit({"aa", "ab", "bb"}).ok());
  EXPECT_EQ(tfidf.DocFrequency('a'), 2u);
  EXPECT_EQ(tfidf.DocFrequency('b'), 2u);
  EXPECT_EQ(tfidf.DocFrequency('z'), 0u);
}

TEST(CharTfidfTest, MatchesPaperEquation) {
  // Column of N=4 cells; character 'x' appears in 1 cell.
  CharTfidf tfidf;
  ASSERT_TRUE(tfidf.Fit({"xy", "yy", "yy", "yy"}).ok());
  // tfidf('x', "xy") = (1/2) * log2(4 / (1+1)).
  double expected = 0.5 * std::log2(4.0 / 2.0);
  EXPECT_NEAR(tfidf.Weight('x', "xy"), expected, 1e-12);
}

TEST(CharTfidfTest, UbiquitousCharWeightsNegativeOrZero) {
  // A character in every cell has idf = log2(N/(N+1)) < 0: common chars are
  // de-emphasized exactly as the paper describes for "@domain.com".
  CharTfidf tfidf;
  ASSERT_TRUE(tfidf.Fit({"a1", "a2", "a3"}).ok());
  EXPECT_LT(tfidf.Weight('a', "a1"), 0.0);
}

TEST(CharTfidfTest, TransformCellAlignsWithVocab) {
  // N=3 docs so characters in one doc get idf = log2(3/2) > 0. (With N=2,
  // beta+1 == N makes the paper's idf exactly zero.)
  CharTfidf tfidf;
  ASSERT_TRUE(tfidf.Fit({"ab", "cd", "ee"}).ok());
  auto vec = tfidf.TransformCell("ad");
  ASSERT_EQ(vec.size(), 5u);  // a b c d e
  EXPECT_GT(vec[0], 0.0);  // 'a' present, rare
  EXPECT_EQ(vec[1], 0.0);  // 'b' absent from the cell
  EXPECT_EQ(vec[2], 0.0);  // 'c' absent
  EXPECT_GT(vec[3], 0.0);  // 'd' present, rare
  EXPECT_EQ(vec[4], 0.0);  // 'e' absent
}

TEST(CharTfidfTest, EmptyCellZeroVector) {
  CharTfidf tfidf;
  ASSERT_TRUE(tfidf.Fit({"ab", ""}).ok());
  auto vec = tfidf.TransformCell("");
  for (double v : vec) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CharTfidfTest, WeightConsistentWithTransform) {
  CharTfidf tfidf;
  ASSERT_TRUE(tfidf.Fit({"hello", "world", "help"}).ok());
  auto vec = tfidf.TransformCell("hello");
  const auto& vocab = tfidf.vocabulary();
  for (size_t i = 0; i < vocab.size(); ++i) {
    EXPECT_NEAR(vec[i], tfidf.Weight(vocab[i], "hello"), 1e-12);
  }
}

}  // namespace
}  // namespace saged::text
