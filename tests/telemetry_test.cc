// Tests for the telemetry subsystem: counter sharding under threads,
// nested span trees, histogram percentiles, JSON round-trip, disabled-mode
// no-ops, and the thread-safe log sink hook.

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace saged::telemetry {
namespace {

/// Enables telemetry from a clean slate and restores the disabled default
/// afterwards, so tests never observe each other's instruments.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TelemetryRegistry::Get().Reset();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    TelemetryRegistry::Get().Reset();
  }
};

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser, enough to round-trip the
// DumpJson schema (objects, arrays, strings, numbers).
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, double, std::string, JsonObject, JsonArray>
      value;

  bool IsObject() const { return std::holds_alternative<JsonObject>(value); }
  const JsonObject& AsObject() const { return std::get<JsonObject>(value); }
  const JsonArray& AsArray() const { return std::get<JsonArray>(value); }
  double AsNumber() const { return std::get<double>(value); }
  const std::string& AsString() const { return std::get<std::string>(value); }

  const JsonValue& At(const std::string& key) const {
    auto it = AsObject().find(key);
    EXPECT_NE(it, AsObject().end()) << "missing key " << key;
    static JsonValue null_value;
    return it == AsObject().end() ? null_value : *it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::shared_ptr<JsonValue> Parse() {
    auto v = ParseValue();
    SkipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing JSON content";
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void Expect(char c) {
    SkipSpace();
    ASSERT_LT(pos_, text_.size());
    ASSERT_EQ(text_[pos_], c) << "at offset " << pos_;
    ++pos_;
  }

  std::shared_ptr<JsonValue> ParseValue() {
    char c = Peek();
    auto out = std::make_shared<JsonValue>();
    if (c == '{') {
      JsonObject obj;
      Expect('{');
      if (Peek() != '}') {
        while (true) {
          std::string key = ParseString();
          Expect(':');
          obj[key] = ParseValue();
          if (Peek() != ',') break;
          Expect(',');
        }
      }
      Expect('}');
      out->value = std::move(obj);
    } else if (c == '[') {
      JsonArray arr;
      Expect('[');
      if (Peek() != ']') {
        while (true) {
          arr.push_back(ParseValue());
          if (Peek() != ',') break;
          Expect(',');
        }
      }
      Expect(']');
      out->value = std::move(arr);
    } else if (c == '"') {
      out->value = ParseString();
    } else {
      out->value = ParseNumber();
    }
    return out;
  }

  std::string ParseString() {
    Expect('"');
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
        switch (text_[pos_]) {
          case 'n':
            s += '\n';
            break;
          case 't':
            s += '\t';
            break;
          default:
            s += text_[pos_];
        }
      } else {
        s += text_[pos_];
      }
      ++pos_;
    }
    Expect('"');
    return s;
  }

  double ParseNumber() {
    SkipSpace();
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    double v = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

const MergedSpan* FindSpan(const std::vector<MergedSpan>& spans,
                           const std::string& name) {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, CounterCountsExactly) {
  SAGED_COUNTER_ADD("test.counter", 5);
  SAGED_COUNTER_INC("test.counter");
  EXPECT_EQ(TelemetryRegistry::Get().CounterValue("test.counter"), 6u);
}

TEST_F(TelemetryTest, CounterShardingExactUnderThreads) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (size_t i = 0; i < kPerThread; ++i) {
        SAGED_COUNTER_INC("test.sharded");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(TelemetryRegistry::Get().CounterValue("test.sharded"),
            kThreads * kPerThread);
}

TEST_F(TelemetryTest, UnknownCounterIsZero) {
  EXPECT_EQ(TelemetryRegistry::Get().CounterValue("no.such.counter"), 0u);
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, HistogramPercentiles) {
  auto* hist = TelemetryRegistry::Get().FindOrCreateHistogram("test.latency");
  // 1..1000 in shuffled order: p50 ~ 500, p95 ~ 950, p99 ~ 990.
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(static_cast<double>(i));
  Rng rng(11);
  rng.Shuffle(values);
  for (double v : values) hist->Observe(v);

  auto stats = hist->Snapshot();
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 1000.0);
  EXPECT_NEAR(stats.mean, 500.5, 0.01);
  // Percentile values are log-linear bucket midpoints: allow the bucket
  // resolution (~1/32 relative) plus slack.
  EXPECT_NEAR(stats.p50, 500.0, 50.0);
  EXPECT_NEAR(stats.p90, 900.0, 90.0);
  EXPECT_NEAR(stats.p95, 950.0, 95.0);
  EXPECT_NEAR(stats.p99, 990.0, 99.0);
  EXPECT_LE(stats.p50, stats.p90);
  EXPECT_LE(stats.p90, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
}

TEST_F(TelemetryTest, HistogramHandlesExtremeValues) {
  auto* hist = TelemetryRegistry::Get().FindOrCreateHistogram("test.extreme");
  hist->Observe(0.0);     // non-positive goes into the underflow bucket
  hist->Observe(-3.0);
  hist->Observe(1e-12);   // below bucket range
  hist->Observe(1e300);   // above bucket range
  auto stats = hist->Snapshot();
  EXPECT_EQ(stats.count, 4u);
  EXPECT_DOUBLE_EQ(stats.min, -3.0);
  EXPECT_DOUBLE_EQ(stats.max, 1e300);
}

TEST_F(TelemetryTest, HistogramConcurrentObserve) {
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 20000;
  auto* hist = TelemetryRegistry::Get().FindOrCreateHistogram("test.mt");
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        hist->Observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  auto stats = hist->Snapshot();
  EXPECT_EQ(stats.count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, static_cast<double>(kThreads));
}

// ---------------------------------------------------------------------------
// Gauges + memory probes (streaming path instrumentation)
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, GaugeTracksLastValueAndWatermark) {
  SAGED_GAUGE_SET("test.gauge", 7);
  SAGED_GAUGE_SET("test.gauge", 42);
  SAGED_GAUGE_SET("test.gauge", 11);
  auto& reg = TelemetryRegistry::Get();
  EXPECT_EQ(reg.GaugeValue("test.gauge"), 11u);  // last sample
  EXPECT_EQ(reg.GaugeMax("test.gauge"), 42u);    // high watermark
  EXPECT_EQ(reg.GaugeValue("no.such.gauge"), 0u);
  EXPECT_EQ(reg.GaugeMax("no.such.gauge"), 0u);
}

TEST_F(TelemetryTest, GaugeResetClearsBothValueAndMax) {
  SAGED_GAUGE_SET("test.gauge_reset", 99);
  TelemetryRegistry::Get().Reset();
  EXPECT_EQ(TelemetryRegistry::Get().GaugeValue("test.gauge_reset"), 0u);
  EXPECT_EQ(TelemetryRegistry::Get().GaugeMax("test.gauge_reset"), 0u);
}

TEST_F(TelemetryTest, GaugeDisabledModeRecordsNothing) {
  SetEnabled(false);
  SAGED_GAUGE_SET("test.gauge_off", 5);
  SetGauge("test.gauge_off_slow", 5);
  SetEnabled(true);
  EXPECT_EQ(TelemetryRegistry::Get().GaugeValue("test.gauge_off"), 0u);
  EXPECT_EQ(TelemetryRegistry::Get().GaugeValue("test.gauge_off_slow"), 0u);
}

TEST_F(TelemetryTest, GaugeConcurrentSetKeepsTrueMax) {
  constexpr size_t kThreads = 8;
  auto* gauge = TelemetryRegistry::Get().FindOrCreateGauge("test.gauge_mt");
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge, t] {
      for (uint64_t i = 0; i < 5000; ++i) gauge->Set(t * 10000 + i);
    });
  }
  for (auto& t : threads) t.join();
  // The watermark is the largest value any thread ever set.
  EXPECT_EQ(gauge->Max(), (kThreads - 1) * 10000 + 4999);
}

TEST_F(TelemetryTest, RssProbesReturnPlausibleValues) {
  // Linux-only probes; on this target they must produce a nonzero RSS and a
  // peak at least as large as the current value.
  uint64_t current = CurrentRssBytes();
  uint64_t peak = PeakRssBytes();
  EXPECT_GT(current, 0u);
  EXPECT_GE(peak, current);
  // The streaming macro samples into a gauge without crashing.
  SAGED_GAUGE_SAMPLE_RSS("test.rss_gauge");
  EXPECT_GT(TelemetryRegistry::Get().GaugeValue("test.rss_gauge"), 0u);
}

TEST_F(TelemetryTest, TryResetPeakRssRewindsWhenKernelAllows) {
  // Inflate the peak, then rewind. Where the kernel honours clear_refs the
  // new peak must drop to roughly the current RSS; where it refuses, the
  // call reports false and the peak is unchanged.
  {
    std::vector<char> ballast(64 << 20, 1);
    EXPECT_GT(ballast[12345], 0);
  }
  uint64_t before = PeakRssBytes();
  if (TryResetPeakRss()) {
    EXPECT_LE(PeakRssBytes(), before);
  } else {
    EXPECT_EQ(PeakRssBytes(), before);
  }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, NestedSpanTree) {
  {
    SAGED_TRACE_SPAN("outer");
    {
      SAGED_TRACE_SPAN("inner");
    }
    {
      SAGED_TRACE_SPAN("inner");
    }
    {
      SAGED_TRACE_SPAN("other");
    }
  }
  auto spans = SnapshotSpans();
  const MergedSpan* outer = FindSpan(spans, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const MergedSpan* inner = FindSpan(outer->children, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  const MergedSpan* other = FindSpan(outer->children, "other");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->count, 1u);
  // Parent wall time covers its children.
  EXPECT_GE(outer->total_ns, inner->total_ns + other->total_ns);
}

TEST_F(TelemetryTest, SpansFromWorkerThreadsMergeByName) {
  constexpr size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      SAGED_TRACE_SPAN("worker");
      SAGED_TRACE_SPAN("worker/step");
    });
  }
  for (auto& t : threads) t.join();
  auto spans = SnapshotSpans();
  const MergedSpan* worker = FindSpan(spans, "worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->count, kThreads);
  // All contributing thread ids are recorded (distinct threads).
  EXPECT_EQ(worker->threads.size(), kThreads);
  const MergedSpan* step = FindSpan(worker->children, "worker/step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->count, kThreads);
}

TEST_F(TelemetryTest, ResetClearsEverything) {
  SAGED_COUNTER_INC("test.reset");
  ObserveHistogram("test.reset_hist", 1.0);
  {
    SAGED_TRACE_SPAN("reset_span");
  }
  TelemetryRegistry::Get().Reset();
  EXPECT_EQ(TelemetryRegistry::Get().CounterValue("test.reset"), 0u);
  EXPECT_EQ(TelemetryRegistry::Get().HistogramSnapshot("test.reset_hist").count,
            0u);
  auto spans = SnapshotSpans();
  EXPECT_EQ(FindSpan(spans, "reset_span"), nullptr);
}

// ---------------------------------------------------------------------------
// Disabled mode
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, DisabledModeRecordsNothing) {
  SetEnabled(false);
  SAGED_COUNTER_INC("test.disabled");
  SAGED_HISTOGRAM_OBSERVE("test.disabled_hist", 1.0);
  {
    SAGED_TRACE_SPAN("disabled_span");
  }
  AddCounter("test.disabled_slow", 1);
  ObserveHistogram("test.disabled_hist_slow", 1.0);
  SetEnabled(true);
  EXPECT_EQ(TelemetryRegistry::Get().CounterValue("test.disabled"), 0u);
  EXPECT_EQ(
      TelemetryRegistry::Get().HistogramSnapshot("test.disabled_hist").count,
      0u);
  EXPECT_EQ(FindSpan(SnapshotSpans(), "disabled_span"), nullptr);
  EXPECT_EQ(TelemetryRegistry::Get().CounterValue("test.disabled_slow"), 0u);
}

TEST_F(TelemetryTest, SpanOpenedWhileEnabledFinishesAfterDisable) {
  {
    SAGED_TRACE_SPAN("toggled");
    SetEnabled(false);
  }
  SetEnabled(true);
  auto spans = SnapshotSpans();
  const MergedSpan* toggled = FindSpan(spans, "toggled");
  ASSERT_NE(toggled, nullptr);
  EXPECT_EQ(toggled->count, 1u);
}

// ---------------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, JsonRoundTrip) {
  SAGED_COUNTER_ADD("json.counter", 42);
  for (int i = 1; i <= 100; ++i) {
    ObserveHistogram("json.hist", static_cast<double>(i));
  }
  {
    SAGED_TRACE_SPAN("json/root");
    SAGED_TRACE_SPAN("json/child");
  }

  std::string json = TelemetryRegistry::Get().DumpJson();
  JsonParser parser(json);
  auto doc = parser.Parse();
  ASSERT_TRUE(doc->IsObject());

  EXPECT_EQ(doc->At("version").AsNumber(), 1.0);
  EXPECT_EQ(doc->At("counters").At("json.counter").AsNumber(), 42.0);

  const auto& hist = doc->At("histograms").At("json.hist");
  EXPECT_EQ(hist.At("count").AsNumber(), 100.0);
  EXPECT_DOUBLE_EQ(hist.At("min").AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(hist.At("max").AsNumber(), 100.0);
  EXPECT_NEAR(hist.At("p50").AsNumber(), 50.0, 10.0);

  const auto& spans = doc->At("spans").AsArray();
  bool found = false;
  for (const auto& span : spans) {
    if (span->At("name").AsString() != "json/root") continue;
    found = true;
    EXPECT_EQ(span->At("count").AsNumber(), 1.0);
    EXPECT_GE(span->At("total_ms").AsNumber(), 0.0);
    const auto& children = span->At("children").AsArray();
    ASSERT_EQ(children.size(), 1u);
    EXPECT_EQ(children[0]->At("name").AsString(), "json/child");
  }
  EXPECT_TRUE(found);
}

TEST_F(TelemetryTest, JsonIncludesGauges) {
  SAGED_GAUGE_SET("json.gauge", 9);
  SAGED_GAUGE_SET("json.gauge", 3);
  std::string json = TelemetryRegistry::Get().DumpJson();
  JsonParser parser(json);
  auto doc = parser.Parse();
  const auto& gauge = doc->At("gauges").At("json.gauge");
  EXPECT_EQ(gauge.At("value").AsNumber(), 3.0);
  EXPECT_EQ(gauge.At("max").AsNumber(), 9.0);
}

TEST_F(TelemetryTest, JsonEscapesSpecialCharacters) {
  SAGED_COUNTER_INC("weird\"name\\with\nspecials");
  std::string json = TelemetryRegistry::Get().DumpJson();
  JsonParser parser(json);
  auto doc = parser.Parse();
  EXPECT_EQ(doc->At("counters").At("weird\"name\\with\nspecials").AsNumber(),
            1.0);
}

// ---------------------------------------------------------------------------
// Log sink (common/logging.h satellite)
// ---------------------------------------------------------------------------

TEST(LogSinkTest, CapturesMessages) {
  std::vector<std::string> captured;
  SetLogSink([&captured](LogLevel, const std::string& message) {
    captured.push_back(message);
  });
  SAGED_LOG(Info) << "hello " << 42;
  SetLogSink(nullptr);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("hello 42"), std::string::npos);
  EXPECT_NE(captured[0].find("INFO"), std::string::npos);
}

TEST(LogSinkTest, BelowMinLevelNotDelivered) {
  std::vector<std::string> captured;
  SetLogSink([&captured](LogLevel, const std::string& message) {
    captured.push_back(message);
  });
  SAGED_LOG(Debug) << "too quiet";  // default min level is Info
  SetLogSink(nullptr);
  EXPECT_TRUE(captured.empty());
}

TEST(LogSinkTest, ConcurrentMessagesArriveWhole) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 200;
  std::vector<std::string> captured;
  SetLogSink([&captured](LogLevel, const std::string& message) {
    // The sink runs under the logging mutex: no extra locking needed.
    captured.push_back(message);
  });
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        SAGED_LOG(Info) << "msg-" << t << "-" << i << "-end";
      }
    });
  }
  for (auto& t : threads) t.join();
  SetLogSink(nullptr);
  ASSERT_EQ(captured.size(), kThreads * kPerThread);
  for (const auto& message : captured) {
    // Every line is one complete message: prefix, then exactly one payload
    // terminated by "-end".
    EXPECT_NE(message.find("msg-"), std::string::npos);
    EXPECT_EQ(message.find("msg-"), message.rfind("msg-"));
    EXPECT_EQ(message.substr(message.size() - 4), "-end");
  }
}

}  // namespace
}  // namespace saged::telemetry
