// saged_report: compare two perf artifacts (run-ledger manifests,
// telemetry dumps, or any JSON with numeric leaves) and fail on
// regressions in gated (time/memory) metrics.
//
// Usage:
//   saged_report OLD.json NEW.json [--threshold PCT] [--min-value V]
//                [--floor METRIC=VALUE]... [--json]
//
// --floor (repeatable) adds a higher-is-better quality gate on the NEW
// file: the named metric must exist and be >= VALUE, independent of the
// old file (e.g. --floor kb.recall_at_max=0.95).
//
// Exit codes: 0 = no regressions, 1 = at least one gated metric regressed
// beyond the threshold or a floored metric fell below its floor,
// 2 = usage/IO/parse error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/report_engine.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s OLD.json NEW.json [--threshold PCT] "
               "[--min-value V] [--floor METRIC=VALUE]... [--json]\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) {
    *error = "read failed for " + path;
    return false;
  }
  *out = ss.str();
  return true;
}

bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text, &end);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  saged::report::CompareOptions options;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--threshold" || arg == "--min-value") {
      if (i + 1 >= argc) return Usage(argv[0]);
      double value = 0.0;
      if (!ParseDouble(argv[++i], &value)) {
        std::fprintf(stderr, "saged_report: bad value for %s: %s\n",
                     arg.c_str(), argv[i]);
        return 2;
      }
      (arg == "--threshold" ? options.threshold_pct : options.min_value) =
          value;
    } else if (arg == "--floor") {
      if (i + 1 >= argc) return Usage(argv[0]);
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      double value = 0.0;
      if (eq == std::string::npos || eq == 0 ||
          !ParseDouble(spec.c_str() + eq + 1, &value)) {
        std::fprintf(stderr,
                     "saged_report: --floor expects METRIC=VALUE, got %s\n",
                     spec.c_str());
        return 2;
      }
      options.floors.emplace_back(spec.substr(0, eq), value);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "saged_report: unknown flag %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return Usage(argv[0]);

  std::string old_text, new_text, error;
  if (!ReadFile(positional[0], &old_text, &error) ||
      !ReadFile(positional[1], &new_text, &error)) {
    std::fprintf(stderr, "saged_report: %s\n", error.c_str());
    return 2;
  }

  auto old_parsed = saged::report::ParseNumericLeaves(old_text);
  if (!old_parsed.error.empty()) {
    std::fprintf(stderr, "saged_report: %s: %s\n", positional[0].c_str(),
                 old_parsed.error.c_str());
    return 2;
  }
  auto new_parsed = saged::report::ParseNumericLeaves(new_text);
  if (!new_parsed.error.empty()) {
    std::fprintf(stderr, "saged_report: %s: %s\n", positional[1].c_str(),
                 new_parsed.error.c_str());
    return 2;
  }

  auto result = saged::report::Compare(old_parsed.metrics, new_parsed.metrics,
                                       options);
  if (json) {
    std::fputs(saged::report::FormatJson(result).c_str(), stdout);
  } else {
    std::fputs(saged::report::FormatTable(result, options).c_str(), stdout);
  }
  return result.regressions > 0 ? 1 : 0;
}
