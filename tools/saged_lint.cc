// saged_lint: command-line driver for the project invariant checker.
//
//   saged_lint [--root DIR] [--json] [--sarif PATH] [--list-rules]
//
// Exit codes: 0 clean, 1 violations found, 2 usage error. The default
// report is GCC-style (`path:line: error: [rule] message`) so editors and
// CI annotate findings in place; --json emits the machine-readable form,
// and --sarif additionally writes a SARIF 2.1.0 report to PATH for CI
// viewers that render findings as code annotations.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "tools/lint_engine.h"

int main(int argc, char** argv) {
  std::string root = ".";
  std::string sarif_path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& rule : saged::lint::RuleNames()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: saged_lint [--root DIR] [--json] [--sarif PATH] "
          "[--list-rules]\n");
      return 0;
    } else {
      std::fprintf(stderr, "saged_lint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  std::vector<saged::lint::SourceFile> files = saged::lint::LoadTree(root);
  if (files.empty()) {
    std::fprintf(stderr,
                 "saged_lint: no sources under '%s' (expected src/, tools/, "
                 "bench/, tests/, examples/)\n",
                 root.c_str());
    return 2;
  }
  saged::lint::LintResult result = saged::lint::RunLint(files);
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "saged_lint: cannot write SARIF to '%s'\n",
                   sarif_path.c_str());
      return 2;
    }
    out << saged::lint::FormatSarif(result);
  }
  std::string report = json ? saged::lint::FormatJson(result)
                            : saged::lint::FormatGcc(result);
  std::fputs(report.c_str(), stdout);
  return result.findings.empty() ? 0 : 1;
}
