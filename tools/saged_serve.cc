// saged_serve — long-lived detection daemon and its client helper.
//
//   saged_serve start --socket /tmp/saged.sock --kb kb.bin
//                     [--max-queue N] [--max-inflight N] [--warm]
//                     [config knobs] [--telemetry-out F] [--trace-out F]
//                     [--runs-dir DIR]
//   saged_serve start --socket /tmp/saged.sock --history adult,movies
//                     [--rows N] [config knobs]
//   saged_serve request --socket /tmp/saged.sock --data dirty.csv
//                       --oracle-mask truth.csv [--stream] [--block-rows N]
//                       [--chunk-bytes N] [--out detections.csv]
//                       [--request-id N] [config knobs]
//   saged_serve ping --socket /tmp/saged.sock
//   saged_serve stop --socket /tmp/saged.sock
//   saged_serve smoke [--rows N] [--runs-dir DIR]
//
// `start` loads the knowledge base exactly once (from `--kb`, or trained
// in-process from the generated `--history` datasets), then serves
// DetectRequest frames on the local socket until SIGINT/SIGTERM or a
// client `stop`. Every detection request funnels through the same
// `Saged::Run(DetectionRequest)` entry point as `saged_cli detect`; config
// knobs given to `request` ride along as per-request overrides of the
// server's base config.
//
// `--kb` also accepts a sharded store (`saged kb build-index` output): a
// store directory or its manifest file. The daemon then starts after
// reading only the manifest and signature index — base models hydrate
// shard-by-shard on first use, bounded by `--kb-cache-shards`. Pass
// `--warm` to hydrate and pin every model up front instead (the old
// eager behavior, minus request-time load latency).
//
// `smoke` is the self-contained health check wired into ctest: it
// generates datasets, trains an engine, starts a server on a temp socket,
// round-trips requests, asserts the masks are byte-identical to a direct
// in-process run and that the knowledge base was loaded exactly once
// (serve.kb_loads == 1), then shuts down cleanly.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <filesystem>

#include "common/stopwatch.h"
#include "core/detector.h"
#include "core/serialization.h"
#include "data/csv.h"
#include "data/mask_io.h"
#include "datagen/datasets.h"
#include "kb/kb_builder.h"
#include "kb/shard_store.h"
#include "serve/client.h"
#include "serve/server.h"

#include "cli_common.h"

namespace {

using namespace saged;
using cli::Args;
using cli::Fail;

serve::SagedServer* g_server = nullptr;

void HandleStopSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();  // async-signal-safe
}

/// Builds the `name=value,...` override list a request carries from the
/// registered config knobs present on the command line.
std::string ConfigFlagListFromArgs(const Args& args) {
  std::string list;
  for (const auto& [name, value] : args.flags) {
    if (!core::IsSagedConfigFlag(name)) continue;
    if (!list.empty()) list += ',';
    list += name + "=" + value;
  }
  return list;
}

/// Loads or trains the engine's knowledge base — the once-per-process step
/// the daemon exists to amortize. Counted so tests and telemetry can
/// verify it really happens exactly once. When --kb names a sharded store,
/// *store_out receives the opened store (which must outlive the engine)
/// and the engine gets a lazily-backed knowledge base.
Status LoadEngineKnowledge(const Args& args, core::Saged* engine,
                           std::unique_ptr<kb::ShardStore>* store_out) {
  SAGED_TRACE_SPAN("serve/load_kb");
  SAGED_COUNTER_INC("serve.kb_loads");
  std::string kb_path = args.Get("kb");
  if (!kb_path.empty()) {
    std::error_code ec;
    bool is_store =
        std::filesystem::is_directory(kb_path, ec) ||
        std::filesystem::path(kb_path).filename() == kb::kManifestFilename;
    if (is_store) {
      kb::ShardStore::OpenOptions open_options;
      open_options.cache_shards = engine->config().kb_cache_shards;
      SAGED_ASSIGN_OR_RETURN(*store_out,
                             kb::ShardStore::Open(kb_path, open_options));
      SAGED_ASSIGN_OR_RETURN(auto kb, (*store_out)->MakeKnowledgeBase());
      engine->SetKnowledgeBase(std::move(kb));
      return Status::OK();
    }
    SAGED_ASSIGN_OR_RETURN(auto kb, core::LoadKnowledgeBase(kb_path));
    engine->SetKnowledgeBase(std::move(kb));
    return Status::OK();
  }
  std::string history = args.Get("history");
  if (history.empty()) {
    return Status::InvalidArgument(
        "start needs --kb kb.bin or --history name,name");
  }
  datagen::MakeOptions gen;
  gen.rows = std::strtoull(args.Get("rows", "0").c_str(), nullptr, 10);
  gen.seed = std::strtoull(args.Get("seed", "7").c_str(), nullptr, 10);
  size_t begin = 0;
  while (begin <= history.size()) {
    size_t comma = history.find(',', begin);
    std::string name = history.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (!name.empty()) {
      SAGED_ASSIGN_OR_RETURN(auto ds, datagen::MakeDataset(name, gen));
      SAGED_RETURN_NOT_OK(engine->AddHistoricalDataset(ds.dirty, ds.mask));
    }
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return Status::OK();
}

/// Folds the serving telemetry into run-ledger metrics so saged_report can
/// gate a serving regression like any other number.
void ServeMetricsInto(RunManifest* manifest) {
  auto& registry = telemetry::TelemetryRegistry::Get();
  manifest->metrics["requests"] =
      static_cast<double>(registry.CounterValue("serve.requests"));
  manifest->metrics["rejected"] =
      static_cast<double>(registry.CounterValue("serve.rejected"));
  manifest->metrics["errors"] =
      static_cast<double>(registry.CounterValue("serve.errors"));
  manifest->metrics["connections"] =
      static_cast<double>(registry.CounterValue("serve.connections"));
  auto request_ms = registry.HistogramSnapshot("serve.request_ms");
  if (request_ms.count > 0) {
    manifest->metrics["request_p50_ms"] = request_ms.p50;
    manifest->metrics["request_p99_ms"] = request_ms.p99;
  }
  auto queue_ms = registry.HistogramSnapshot("serve.queue_ms");
  if (queue_ms.count > 0) {
    manifest->metrics["queue_p50_ms"] = queue_ms.p50;
    manifest->metrics["queue_p99_ms"] = queue_ms.p99;
  }
}

int CmdStart(const Args& args) {
  std::string socket_path = args.Get("socket");
  if (socket_path.empty()) {
    std::fprintf(stderr,
                 "usage: saged_serve start --socket PATH (--kb kb.bin | "
                 "--history a,b) [--max-queue N] [--max-inflight N]\n");
    return 1;
  }
  cli::Observability obs = cli::ObsFromArgs(args);
  // Serving metrics are counted even when no --telemetry-out was asked
  // for; the run manifest wants them either way.
  telemetry::SetEnabled(true);
  auto config = cli::ConfigFromArgs(args);
  if (!config.ok()) return Fail(config.status());

  StopWatch watch;
  // Declared before the engine: a lazily-backed knowledge base keeps a
  // provider pointing into the store, so the store must die last.
  std::unique_ptr<kb::ShardStore> store;
  core::Saged engine(*config);
  if (auto s = LoadEngineKnowledge(args, &engine, &store); !s.ok()) {
    return Fail(s);
  }
  if (store != nullptr) {
    kb::StoreStats stats = store->GetStats();
    std::printf("sharded store ready: %zu base models in %zu shard(s), "
                "%zu index bucket(s), cache %s\n",
                stats.n_entries, stats.n_shards, stats.n_buckets,
                stats.cache_capacity == 0
                    ? "unbounded"
                    : (std::to_string(stats.cache_capacity) + " shard(s)")
                          .c_str());
  } else {
    std::printf("knowledge base ready: %zu base models\n",
                engine.knowledge_base().size());
  }

  serve::ServerOptions options;
  options.socket_path = socket_path;
  options.max_queue =
      std::strtoull(args.Get("max-queue", "64").c_str(), nullptr, 10);
  options.max_inflight =
      std::strtoull(args.Get("max-inflight", "1").c_str(), nullptr, 10);
  options.pin_models = !args.Get("warm").empty();
  serve::SagedServer server(&engine, options);
  if (auto s = server.Start(); !s.ok()) return Fail(s);
  std::printf("serving on %s (max-queue %zu, max-inflight %zu); "
              "stop with SIGINT or `saged_serve stop`\n",
              socket_path.c_str(), options.max_queue, options.max_inflight);

  g_server = &server;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  server.Wait();
  g_server = nullptr;

  RunManifest manifest;
  manifest.tool = "saged_serve";
  manifest.config_hash = cli::HexHash(core::ConfigContentHash(*config));
  manifest.threads = static_cast<uint32_t>(config->detect_threads);
  manifest.wall_ms = watch.Seconds() * 1000.0;
  ServeMetricsInto(&manifest);
  std::printf("served %.0f request(s)\n", manifest.metrics["requests"]);
  return cli::FlushObservability(obs, std::move(manifest));
}

int CmdRequest(const Args& args) {
  std::string socket_path = args.Get("socket");
  std::string data_path = args.Get("data");
  std::string oracle_path = args.Get("oracle-mask");
  if (socket_path.empty() || data_path.empty() || oracle_path.empty()) {
    std::fprintf(stderr,
                 "usage: saged_serve request --socket PATH --data dirty.csv "
                 "--oracle-mask truth.csv [--stream] [--out out.csv]\n");
    return 1;
  }
  auto options = cli::DetectionOptionsFromArgs(args);
  if (!options.ok()) return Fail(options.status());

  serve::DetectRequestMsg msg;
  msg.request_id =
      std::strtoull(args.Get("request-id", "1").c_str(), nullptr, 10);
  msg.data_path = data_path;
  msg.oracle_mask_path = oracle_path;
  msg.config_flags = ConfigFlagListFromArgs(args);
  msg.options = *options;

  serve::SagedClient client;
  if (auto s = client.Connect(socket_path); !s.ok()) return Fail(s);
  auto reply = client.Detect(msg);
  if (!reply.ok()) return Fail(reply.status());
  if (!reply->ok()) {
    std::fprintf(stderr, "server error [%s]: %s\n",
                 serve::ServeErrorName(reply->error),
                 reply->error_message.c_str());
    return 1;
  }
  const auto& r = reply->response;
  std::printf("detected %zu dirty cells in %.2fs with %zu labels%s\n",
              r.mask.DirtyCount(), r.seconds,
              static_cast<size_t>(r.labeled_tuples),
              msg.options.stream ? " (streamed)" : "");
  std::printf("precision=%.3f recall=%.3f f1=%.3f\n", r.precision, r.recall,
              r.f1);
  std::string out = args.Get("out");
  if (!out.empty()) {
    Table detections = MaskToTable(r.mask, r.column_names);
    if (auto s = WriteCsv(detections, out); !s.ok()) return Fail(s);
    std::printf("wrote detections to %s\n", out.c_str());
  }
  return 0;
}

int CmdPing(const Args& args) {
  std::string socket_path = args.Get("socket");
  if (socket_path.empty()) {
    std::fprintf(stderr, "usage: saged_serve ping --socket PATH\n");
    return 1;
  }
  serve::SagedClient client;
  if (auto s = client.Connect(socket_path); !s.ok()) return Fail(s);
  if (auto s = client.Ping(); !s.ok()) return Fail(s);
  std::printf("pong\n");
  return 0;
}

int CmdStopServer(const Args& args) {
  std::string socket_path = args.Get("socket");
  if (socket_path.empty()) {
    std::fprintf(stderr, "usage: saged_serve stop --socket PATH\n");
    return 1;
  }
  serve::SagedClient client;
  if (auto s = client.Connect(socket_path); !s.ok()) return Fail(s);
  if (auto s = client.SendShutdown(); !s.ok()) return Fail(s);
  std::printf("server acknowledged shutdown\n");
  return 0;
}

/// Self-contained server health check (the `servesmoke` ctest): in-process
/// server on a temp socket, real wire round-trips, byte-identity against a
/// direct engine run, single KB load, clean shutdown.
int CmdSmoke(const Args& args) {
  telemetry::SetEnabled(true);
  cli::Observability obs = cli::ObsFromArgs(args);
  StopWatch watch;

  char tmpl[] = "/tmp/saged_smoke_XXXXXX";
  char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    return Fail(Status::IoError("mkdtemp failed"));
  }
  const std::string tmp(dir);

  // A small but non-trivial workload (1-core CI budget).
  datagen::MakeOptions gen;
  gen.rows = std::strtoull(args.Get("rows", "160").c_str(), nullptr, 10);
  gen.seed = 7;
  core::SagedConfig config;
  config.labeling_budget = 20;
  config.w2v.epochs = 1;
  config.w2v.dim = 6;
  auto target = datagen::MakeDataset("beers", gen);
  if (!target.ok()) return Fail(target.status());
  const std::string data_csv = tmp + "/beers_dirty.csv";
  const std::string mask_csv = tmp + "/beers_mask.csv";
  if (auto s = WriteCsv(target->dirty, data_csv); !s.ok()) return Fail(s);
  Table mask_table = MaskToTable(target->mask, target->dirty.ColumnNames());
  if (auto s = WriteCsv(mask_table, mask_csv); !s.ok()) return Fail(s);

  core::Saged engine(config);
  {
    SAGED_TRACE_SPAN("serve/load_kb");
    SAGED_COUNTER_INC("serve.kb_loads");
    for (const char* name : {"adult", "movies"}) {
      auto hist = datagen::MakeDataset(name, gen);
      if (!hist.ok()) return Fail(hist.status());
      if (auto s = engine.AddHistoricalDataset(hist->dirty, hist->mask);
          !s.ok()) {
        return Fail(s);
      }
    }
  }

  // The reference: a direct in-process run on the same files the server
  // will read.
  auto oracle_table = ReadCsv(mask_csv);
  if (!oracle_table.ok()) return Fail(oracle_table.status());
  auto truth = TableToMask(*oracle_table);
  if (!truth.ok()) return Fail(truth.status());
  auto direct = engine.Run(core::DetectionRequest::ForCsv(
      data_csv, core::MaskOracle(*truth)));
  if (!direct.ok()) return Fail(direct.status());

  serve::ServerOptions options;
  options.socket_path = tmp + "/serve.sock";
  serve::SagedServer server(&engine, options);
  if (auto s = server.Start(); !s.ok()) return Fail(s);

  int failures = 0;
  auto expect = [&failures](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "smoke FAIL: %s\n", what);
      ++failures;
    }
  };

  {
    serve::SagedClient client;
    expect(client.Connect(options.socket_path).ok(), "connect");
    expect(client.Ping().ok(), "ping");
    for (uint64_t id = 1; id <= 3; ++id) {
      serve::DetectRequestMsg msg;
      msg.request_id = id;
      msg.data_path = data_csv;
      msg.oracle_mask_path = mask_csv;
      auto reply = client.Detect(msg);
      expect(reply.ok(), "detect round-trip");
      if (!reply.ok()) continue;
      expect(reply->ok(), "detect reply is a response, not an error");
      if (!reply->ok()) continue;
      expect(reply->request_id == id, "request id echoed");
      expect(reply->response.mask == direct->mask,
             "served mask byte-identical to the direct run");
    }
    // The whole point of the daemon: one KB load for many requests.
    expect(telemetry::TelemetryRegistry::Get().CounterValue(
               "serve.kb_loads") == 1,
           "knowledge base loaded exactly once");
    expect(client.SendShutdown().ok(), "clean shutdown handshake");
  }
  server.Wait();

  RunManifest manifest;
  manifest.tool = "saged_serve smoke";
  manifest.config_hash = cli::HexHash(core::ConfigContentHash(config));
  manifest.wall_ms = watch.Seconds() * 1000.0;
  ServeMetricsInto(&manifest);
  manifest.metrics["failures"] = failures;

  std::remove(data_csv.c_str());
  std::remove(mask_csv.c_str());
  ::rmdir(tmp.c_str());

  if (failures > 0) return 1;
  int flush = cli::FlushObservability(obs, std::move(manifest));
  if (flush != 0) return flush;
  std::printf("servesmoke OK: %zu requests, masks byte-identical, "
              "kb loaded once\n",
              static_cast<size_t>(telemetry::TelemetryRegistry::Get()
                                      .CounterValue("serve.requests")));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: saged_serve <start|request|ping|stop|smoke> ...\n");
    return 1;
  }
  std::string cmd = argv[1];
  cli::SetCommandLine(argc, argv);
  auto args = cli::ParseArgs(argc, argv, 2);
  if (!args.ok()) return Fail(args.status());
  if (cmd == "start") return CmdStart(*args);
  if (cmd == "request") return CmdRequest(*args);
  if (cmd == "ping") return CmdPing(*args);
  if (cmd == "stop") return CmdStopServer(*args);
  if (cmd == "smoke") return CmdSmoke(*args);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 1;
}
