#ifndef SAGED_TOOLS_REPORT_ENGINE_H_
#define SAGED_TOOLS_REPORT_ENGINE_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

/// saged_report: a dependency-free perf comparator over the JSON artifacts
/// the observability layer emits — run-ledger manifests (runs/*.json),
/// telemetry dumps, or any JSON with numeric leaves. Deliberately std-only
/// (like lint_engine): the perf gate must build and run even when the
/// library it measures does not.
///
/// Model: both files are flattened to `path -> number` (object keys joined
/// with '/', array elements indexed), then compared metric-by-metric.
/// Metrics whose final segment carries a time/memory suffix (`_ms`, `.p99`
/// over a *_ms histogram, `_bytes`, ...) are *gated*: lower is better, and
/// a relative increase beyond the threshold — on values above the noise
/// floor — counts as a regression. Everything else is informational.
namespace saged::report {

/// Flattened numeric leaves of one JSON document.
struct ParseResult {
  std::map<std::string, double> metrics;
  std::string error;  // empty on success; metrics is partial otherwise
};

/// Parses `json` and flattens every numeric leaf. Strings, booleans and
/// nulls are skipped (they are provenance, not metrics). Malformed input
/// sets `error` with a byte offset.
ParseResult ParseNumericLeaves(const std::string& json);

/// True when the metric at `path` is gated (lower-is-better time/memory):
/// the last path segment, or any of its '_'/'.'-separated tokens, is one
/// of ms / ns / us / s / seconds / bytes / mb / kb / gb — so both
/// "wall_ms" and "bench.cell_ms.p99" gate.
bool IsGatedMetric(const std::string& path);

struct MetricDelta {
  std::string path;
  double old_value = 0.0;
  double new_value = 0.0;
  /// Percent change relative to old (0 when old == 0).
  double delta_pct = 0.0;
  bool gated = false;
  bool regression = false;
};

struct CompareOptions {
  /// A gated metric regresses when new > old * (1 + threshold_pct/100).
  double threshold_pct = 10.0;
  /// Noise floor: gated comparison only applies when old >= min_value (in
  /// the metric's own unit) — sub-millisecond timings jitter too much to
  /// gate.
  double min_value = 1.0;
  /// Quality floors (higher-is-better gates): the NEW file's metric must be
  /// >= the floor or the comparison counts a regression. Unlike the
  /// threshold gate this needs no old file — it protects absolute quality
  /// (e.g. an index's recall) rather than relative drift. A floored metric
  /// missing from the new file also fails: a gate that silently vanishes is
  /// not a passing gate.
  std::vector<std::pair<std::string, double>> floors;
};

/// Verdict for one CompareOptions::floors entry.
struct FloorCheck {
  std::string path;
  double floor = 0.0;
  double value = 0.0;   // meaningless when !present
  bool present = false;  // metric found in the new file
  bool passed = false;   // present && value >= floor
};

struct CompareResult {
  std::vector<MetricDelta> deltas;  // metrics present in both, sorted
  std::vector<std::string> only_old;
  std::vector<std::string> only_new;
  std::vector<FloorCheck> floor_checks;  // one per CompareOptions::floors
  size_t regressions = 0;  // threshold regressions + failed floors
};

CompareResult Compare(const std::map<std::string, double>& old_metrics,
                      const std::map<std::string, double>& new_metrics,
                      const CompareOptions& options);

/// Human-readable comparison table plus a verdict line.
std::string FormatTable(const CompareResult& result,
                        const CompareOptions& options);

/// Machine-readable report: {"deltas":[...],"regressions":N,...}.
std::string FormatJson(const CompareResult& result);

}  // namespace saged::report

#endif  // SAGED_TOOLS_REPORT_ENGINE_H_
