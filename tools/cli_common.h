// Front-end plumbing shared by the saged command-line tools (saged_cli,
// saged_serve): flag parsing, observability sinks, run-manifest flushing,
// and the builders that turn parsed flags into a SagedConfig /
// DetectionOptions through the shared registry in core/config_flags.h.
// Header-only so the tools stay single-translation-unit.

#ifndef SAGED_TOOLS_CLI_COMMON_H_
#define SAGED_TOOLS_CLI_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/run_manifest.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/config_flags.h"

namespace saged::cli {

/// Tiny flag parser: --name value pairs after the subcommand.
struct Args {
  std::vector<std::pair<std::string, std::string>> flags;
  std::vector<std::string> positional;

  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    for (const auto& [k, v] : flags) {
      if (k == name) return v;
    }
    return fallback;
  }
  std::vector<std::string> GetAll(const std::string& name) const {
    std::vector<std::string> out;
    for (const auto& [k, v] : flags) {
      if (k == name) out.push_back(v);
    }
    return out;
  }
};

/// Parses argv[start..) into flags and positionals. Presence flags (the
/// registry's --stream) need no value; `--name=value` works for all.
inline Result<Args> ParseArgs(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      size_t eq = a.find('=');
      if (eq != std::string::npos) {
        args.flags.emplace_back(a.substr(2, eq - 2), a.substr(eq + 1));
        continue;
      }
      std::string name = a.substr(2);
      if (core::IsSagedPresenceFlag(name)) {
        args.flags.emplace_back(name, "1");
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag " + a + " needs a value");
      }
      args.flags.emplace_back(name, argv[++i]);
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

inline int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// The argv the process was started with, space-joined (recorded in the
/// run manifest). Set once in main via SetCommandLine.
inline std::string& CommandLine() {
  static std::string* line = new std::string;
  return *line;
}

inline void SetCommandLine(int argc, char** argv) {
  std::string& line = CommandLine();
  for (int i = 0; i < argc; ++i) {
    if (i) line += ' ';
    line += argv[i];
  }
}

/// Observability sinks requested on the command line. Construct before the
/// instrumented work runs (switches telemetry / trace capture on), flush
/// after.
struct Observability {
  std::string telemetry_path;  // --telemetry-out
  std::string trace_path;      // --trace-out
  std::string runs_dir;        // --runs-dir; empty = ledger disabled
};

inline Observability ObsFromArgs(const Args& args) {
  Observability obs;
  obs.telemetry_path = args.Get("telemetry-out");
  obs.trace_path = args.Get("trace-out");
  obs.runs_dir = args.Get("runs-dir", "runs");
  if (obs.runs_dir == "none") obs.runs_dir.clear();
  if (!obs.telemetry_path.empty() || !obs.trace_path.empty()) {
    telemetry::SetEnabled(true);
  }
  if (!obs.trace_path.empty()) telemetry::SetTraceEventsEnabled(true);
  return obs;
}

inline std::string HexHash(uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Writes the requested telemetry / trace dumps and appends the run
/// manifest to the ledger. Returns the command's exit code.
inline int FlushObservability(const Observability& obs, RunManifest manifest) {
  if (!obs.telemetry_path.empty()) {
    auto& registry = telemetry::TelemetryRegistry::Get();
    if (auto s = registry.DumpJsonToFile(obs.telemetry_path); !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote telemetry to %s\n", obs.telemetry_path.c_str());
    manifest.extra["telemetry_out"] = obs.telemetry_path;
  }
  if (!obs.trace_path.empty()) {
    if (auto s = telemetry::WriteChromeTrace(obs.trace_path); !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote Chrome trace to %s\n", obs.trace_path.c_str());
    manifest.extra["trace_out"] = obs.trace_path;
  }
  if (!obs.runs_dir.empty()) {
    manifest.command_line = CommandLine();
    manifest.peak_rss_bytes = telemetry::PeakRssBytes();
    if (auto s = AppendRunManifest(obs.runs_dir, manifest); !s.ok()) {
      return Fail(s);
    }
  }
  return 0;
}

/// Builds the run's SagedConfig from whichever registered config knobs the
/// command line carries, then validates the result once.
inline Result<core::SagedConfig> ConfigFromArgs(const Args& args) {
  core::SagedConfig config;
  for (const auto& [name, value] : args.flags) {
    if (!core::IsSagedConfigFlag(name)) continue;  // command-specific flag
    SAGED_RETURN_NOT_OK(core::ApplySagedFlag(name, value, &config));
  }
  SAGED_RETURN_NOT_OK(config.Validate());
  return config;
}

/// Builds the request's DetectionOptions from the registered detection
/// flags (--stream / --block-rows / --chunk-bytes). Range checking happens
/// in DetectionRequest::Validate().
inline Result<core::DetectionOptions> DetectionOptionsFromArgs(
    const Args& args) {
  core::DetectionOptions options;
  for (const auto& [name, value] : args.flags) {
    if (!core::IsSagedDetectionFlag(name)) continue;
    SAGED_RETURN_NOT_OK(core::ApplySagedDetectionFlag(name, value, &options));
  }
  return options;
}

}  // namespace saged::cli

#endif  // SAGED_TOOLS_CLI_COMMON_H_
