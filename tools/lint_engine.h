#ifndef SAGED_TOOLS_LINT_ENGINE_H_
#define SAGED_TOOLS_LINT_ENGINE_H_

#include <cstddef>
#include <string>
#include <vector>

/// saged_lint: a dependency-free C++ source scanner that enforces the
/// project invariants the determinism, observability, and concurrency
/// guarantees rest on (see DESIGN.md §Correctness tooling). A shared
/// comment/string/raw-string-aware tokenizer feeds two tiers of analysis:
/// per-line token scans for the simple rules, and a brace-scope tracker
/// with per-class symbol tables for the concurrency rules — deliberately
/// not a compiler plugin, so it runs in milliseconds as a tier-1 CTest on
/// every build even when the library itself does not compile.
///
/// Rules (each suppressible per line with
/// `// saged-lint: allow(<rule>): <justification>`):
///
///   no-raw-random      only common/rng.h randomness in src/ (std::mt19937,
///                      rand(), std::random_device, time() seeding break
///                      bit-for-bit reproducibility)
///   no-adhoc-thread    only common/executor.h spawns threads outside
///                      src/common (std::thread/std::async/pthread_create)
///   no-unchecked-result calls returning Status/Result<> must be consumed;
///                      Status/Result themselves must be [[nodiscard]]
///   no-iostream-in-core src/ code logs through SAGED_LOG, never
///                      cout/cerr/printf (logging.cc is the one writer)
///   include-hygiene    include guards match the file path; cross-layer
///                      includes follow common -> data/ml/text ->
///                      features/datagen -> core -> baselines -> pipeline
///                      -> serve; quoted includes resolve inside the tree
///   no-untimed-stage   pipeline-stage entry points open a telemetry span:
///                      exported pipeline stages (src/pipeline/*.cc
///                      functions declared in a pipeline header) plus the
///                      named core/baseline stage methods (Saged::Detect,
///                      Saged::DetectStream, KnowledgeExtractor::AddDataset,
///                      ErrorDetector::Run) — untimed stages are invisible
///                      to the trace export and the run ledger
///   lock-discipline    members annotated SAGED_GUARDED_BY(mu) (see
///                      common/thread_annotations.h) are only touched
///                      inside a std::lock_guard/unique_lock/scoped_lock
///                      scope naming `mu` or in a function annotated
///                      SAGED_REQUIRES(mu); SAGED_REQUIRES functions are
///                      only called with the lock held, SAGED_EXCLUDES
///                      functions never with it held; every std::mutex
///                      member in src/ is referenced by at least one
///                      GUARDED_BY annotation
///   executor-capture-lifetime  lambdas passed to Executor::Submit must not
///                      capture by reference ([&], [&x]) — the task can
///                      outlive the frame; blocking ParallelFor bodies are
///                      exempt, everything else needs a justified
///                      suppression
///   no-blocking-in-io-loop  functions marked with a `// saged-lint:
///                      io-loop` anchor comment (the poll-loop methods of
///                      SagedServer) must not call blocking primitives
///                      (Wait, .get(), cv wait, sleep_for, raw send/recv/
///                      read/write); lambdas defined inside run elsewhere
///                      and are exempt
///   no-unverified-simd every function a src/ `*_simd.cc` compilation unit
///                      defines at named-namespace scope must be named
///                      `<Base>Simd`, keep a scalar reference sibling
///                      `<Base>Scalar` elsewhere in src/, and co-occur
///                      with that sibling in at least one tests/ file (the
///                      byte-identity parity fixture); anonymous-namespace
///                      helpers are exempt
///
/// A suppression without a justification (or naming an unknown rule) is
/// itself reported, as `bad-suppression`.
namespace saged::lint {

/// One input to the linter. `path` is repo-relative with forward slashes
/// (e.g. "src/core/detector.cc") — rule scoping keys off it, so in-process
/// fixtures must use realistic paths.
struct SourceFile {
  std::string path;
  std::string content;
};

struct Finding {
  std::string rule;
  std::string path;
  size_t line = 0;  // 1-based
  std::string message;
};

struct LintResult {
  std::vector<Finding> findings;  // violations that survived suppression
  size_t files_scanned = 0;
  size_t suppressed = 0;  // findings silenced by a valid allow()
};

/// Names of every rule, in reporting order (includes "bad-suppression").
const std::vector<std::string>& RuleNames();

/// Runs every rule over the given files.
LintResult RunLint(const std::vector<SourceFile>& files);

/// Loads all .h/.cc/.cpp files under root/{src,tools,bench,tests,examples},
/// paths stored root-relative, sorted for deterministic reports.
std::vector<SourceFile> LoadTree(const std::string& root);

/// GCC-style diagnostics ("path:line: error: [rule] message"), one per
/// line, plus a trailing summary line.
std::string FormatGcc(const LintResult& result);

/// Machine-readable report: {"findings": [...], "files_scanned": N,
/// "suppressed": M}.
std::string FormatJson(const LintResult& result);

/// SARIF 2.1.0 (minimal profile: runs/tool/rules/results with ruleId,
/// message, physicalLocation) so findings render as annotations in
/// standard CI viewers.
std::string FormatSarif(const LintResult& result);

}  // namespace saged::lint

#endif  // SAGED_TOOLS_LINT_ENGINE_H_
