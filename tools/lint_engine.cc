#include "tools/lint_engine.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/json.h"

namespace saged::lint {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Source preprocessing: one pass that blanks comments and string/char
// literals (preserving line structure, so offsets map to the original) and
// collects comment text for suppression parsing.
// ---------------------------------------------------------------------------

struct FileView {
  const SourceFile* file = nullptr;
  std::string code;  // same length as content; comments/literals blanked
  std::vector<std::pair<size_t, std::string>> comments;  // (1-based line, text)
  std::vector<std::string> code_lines;
  std::vector<std::string> raw_lines;
};

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

FileView BuildView(const SourceFile& file) {
  FileView view;
  view.file = &file;
  const std::string& in = file.content;
  std::string code = in;
  size_t line = 1;
  size_t i = 0;
  const size_t n = in.size();
  auto blank = [&](size_t pos) {
    if (code[pos] != '\n') code[pos] = ' ';
  };
  while (i < n) {
    char c = in[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {  // line comment
      size_t start = i;
      while (i < n && in[i] != '\n') {
        blank(i);
        ++i;
      }
      view.comments.emplace_back(line, in.substr(start, i - start));
      continue;
    }
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {  // block comment
      size_t start = i;
      size_t start_line = line;
      blank(i);
      blank(i + 1);
      i += 2;
      while (i < n && !(in[i] == '*' && i + 1 < n && in[i + 1] == '/')) {
        if (in[i] == '\n') ++line;
        blank(i);
        ++i;
      }
      if (i < n) {
        blank(i);
        blank(i + 1);
        i += 2;
      }
      view.comments.emplace_back(start_line, in.substr(start, i - start));
      continue;
    }
    if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
        (i == 0 || !IsWordChar(in[i - 1]))) {  // raw string literal
      size_t d = i + 2;
      while (d < n && in[d] != '(' && in[d] != '\n') ++d;
      if (d < n && in[d] == '(') {
        std::string terminator =
            ")" + in.substr(i + 2, d - (i + 2)) + "\"";
        blank(i);
        size_t j = i + 1;
        while (j < n && in.compare(j, terminator.size(), terminator) != 0) {
          if (in[j] == '\n') ++line;
          blank(j);
          ++j;
        }
        for (size_t k = 0; k < terminator.size() && j < n; ++k, ++j) blank(j);
        i = j;
        continue;
      }
    }
    if (c == '"' || c == '\'') {  // string / char literal
      char quote = c;
      blank(i);
      ++i;
      while (i < n && in[i] != quote) {
        if (in[i] == '\\' && i + 1 < n) {
          blank(i);
          ++i;
        }
        if (in[i] == '\n') break;  // unterminated; bail at end of line
        blank(i);
        ++i;
      }
      if (i < n && in[i] == quote) {
        blank(i);
        ++i;
      }
      continue;
    }
    ++i;
  }
  view.code = std::move(code);
  view.code_lines = SplitLines(view.code);
  view.raw_lines = SplitLines(in);
  return view;
}

// ---------------------------------------------------------------------------
// Token search helpers over the blanked code view.
// ---------------------------------------------------------------------------

/// Finds `token` as a whole word (boundaries are non-identifier chars;
/// "::" counts as a boundary, so "rand" matches inside "std::rand" but not
/// "operand"). Returns 0-based columns of each occurrence in `line`.
std::vector<size_t> FindToken(const std::string& line,
                              const std::string& token) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsWordChar(line[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= line.size() || !IsWordChar(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// Like FindToken but additionally requires '(' (after optional spaces)
/// right after the token — for flagging calls like rand() / time(0).
std::vector<size_t> FindCall(const std::string& line,
                             const std::string& token) {
  std::vector<size_t> hits;
  for (size_t pos : FindToken(line, token)) {
    size_t j = pos + token.size();
    while (j < line.size() && line[j] == ' ') ++j;
    if (j < line.size() && line[j] == '(') hits.push_back(pos);
  }
  return hits;
}

/// Extracts quoted and angle includes from the raw lines:
/// (line, path, is_quoted).
struct Include {
  size_t line;
  std::string path;
  bool quoted;
};

std::vector<Include> ParseIncludes(const FileView& view) {
  std::vector<Include> out;
  for (size_t l = 0; l < view.raw_lines.size(); ++l) {
    const std::string& raw = view.raw_lines[l];
    size_t i = raw.find_first_not_of(" \t");
    if (i == std::string::npos || raw[i] != '#') continue;
    size_t inc = raw.find("include", i);
    if (inc == std::string::npos) continue;
    size_t open = raw.find_first_of("\"<", inc);
    if (open == std::string::npos) continue;
    char close = raw[open] == '"' ? '"' : '>';
    size_t end = raw.find(close, open + 1);
    if (end == std::string::npos) continue;
    out.push_back(
        {l + 1, raw.substr(open + 1, end - open - 1), raw[open] == '"'});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions: `// saged-lint: allow(rule[, rule]): justification` silences
// findings of those rules on the comment's line (or, for a comment standing
// alone on its line, the next line that has code). `allow-file(rule)` covers
// the whole file. The justification is mandatory.
// ---------------------------------------------------------------------------

struct Suppressions {
  std::map<std::string, std::set<size_t>> line_allows;  // rule -> lines
  std::set<std::string> file_allows;
  std::vector<Finding> bad;  // malformed suppressions
};

bool LineHasCode(const FileView& view, size_t line) {  // 1-based
  if (line == 0 || line > view.code_lines.size()) return false;
  return view.code_lines[line - 1].find_first_not_of(" \t\r") !=
         std::string::npos;
}

Suppressions ParseSuppressions(const FileView& view,
                               const std::set<std::string>& known_rules) {
  Suppressions out;
  for (const auto& [line, text] : view.comments) {
    // A directive must START the comment (after the // or /* prefix) —
    // "saged-lint:" mid-sentence is prose about the linter, not an
    // instruction to it.
    size_t lead = text.find_first_not_of("/*! \t");
    if (lead == std::string::npos) continue;
    if (text.compare(lead, 11, "saged-lint:") != 0) continue;
    size_t cursor = lead + std::string("saged-lint:").size();
    while (cursor < text.size() && text[cursor] == ' ') ++cursor;
    bool file_scope = false;
    if (text.compare(cursor, 7, "io-loop") == 0) {
      continue;  // an anchor for no-blocking-in-io-loop, not a suppression
    }
    if (text.compare(cursor, 11, "allow-file(") == 0) {
      file_scope = true;
      cursor += 11;
    } else if (text.compare(cursor, 6, "allow(") == 0) {
      cursor += 6;
    } else {
      out.bad.push_back({"bad-suppression", view.file->path, line,
                         "malformed saged-lint directive; expected "
                         "allow(<rule>): <justification>"});
      continue;
    }
    size_t close = text.find(')', cursor);
    if (close == std::string::npos) {
      out.bad.push_back({"bad-suppression", view.file->path, line,
                         "unterminated allow( directive"});
      continue;
    }
    // Split the rule list.
    std::vector<std::string> rules;
    std::string current;
    for (size_t i = cursor; i <= close; ++i) {
      char c = text[i];
      if (c == ',' || c == ')') {
        size_t b = current.find_first_not_of(' ');
        size_t e = current.find_last_not_of(' ');
        if (b != std::string::npos) {
          rules.push_back(current.substr(b, e - b + 1));
        }
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    // The justification: any non-trivial text after the ')' (an optional
    // ':' or '-' separator does not count as justification by itself).
    std::string why = text.substr(close + 1);
    size_t b = why.find_first_not_of(" :-");
    bool justified = b != std::string::npos && why.size() - b >= 3;
    if (!justified) {
      out.bad.push_back({"bad-suppression", view.file->path, line,
                         "suppression needs a justification after the ')'"});
      continue;
    }
    for (const auto& rule : rules) {
      if (known_rules.count(rule) == 0) {
        out.bad.push_back({"bad-suppression", view.file->path, line,
                           "unknown rule '" + rule + "' in allow()"});
        continue;
      }
      if (file_scope) {
        out.file_allows.insert(rule);
      } else {
        size_t target = line;
        if (!LineHasCode(view, line)) {
          // Standalone comment: cover the next line that has code.
          target = line + 1;
          while (target <= view.code_lines.size() &&
                 !LineHasCode(view, target)) {
            ++target;
          }
        }
        out.line_allows[rule].insert(target);
        // A trailing comment also covers its own line when the directive
        // sits after code.
        out.line_allows[rule].insert(line);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule scoping.
// ---------------------------------------------------------------------------

/// Layer ranks for include-hygiene. An include may only point at the same
/// directory or a strictly lower rank — the dependency order the build has
/// today, now enforced.
int LayerRank(const std::string& layer) {
  if (layer == "common") return 0;
  if (layer == "data" || layer == "ml" || layer == "text") return 1;
  if (layer == "features" || layer == "datagen") return 2;
  if (layer == "core") return 3;
  // kb and baselines are peers atop core: the generic rank check keeps
  // them mutually ignorant of each other.
  if (layer == "baselines" || layer == "kb") return 4;
  if (layer == "pipeline") return 5;
  if (layer == "serve") return 6;
  return -1;  // not a src layer
}

/// The serve layer sits on top of the rank order but is deliberately
/// narrower than "anything below": the daemon is a thin transport over the
/// core engine, so it may depend only on these layers (and itself). Nothing
/// in src/ may depend on serve — its rank is the maximum, so the generic
/// rank check already enforces that direction.
bool ServeMayInclude(const std::string& target_layer) {
  return target_layer == "serve" || target_layer == "common" ||
         target_layer == "data" || target_layer == "core" ||
         target_layer == "kb";
}

/// kb (the sharded knowledge-base store) is likewise narrower than its
/// rank: it extends the core engine's storage and matching, so it may not
/// reach into baselines, pipeline, or the synthetic-data layers.
bool KbMayInclude(const std::string& target_layer) {
  return target_layer == "kb" || target_layer == "common" ||
         target_layer == "data" || target_layer == "ml" ||
         target_layer == "features" || target_layer == "core";
}

/// First path segment after "src/", or "" when not under src/.
std::string SrcLayer(const std::string& path) {
  if (!StartsWith(path, "src/")) return "";
  size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

// ---------------------------------------------------------------------------
// Individual rules.
// ---------------------------------------------------------------------------

void RuleNoRawRandom(const FileView& view, std::vector<Finding>* findings) {
  const std::string& path = view.file->path;
  if (!StartsWith(path, "src/")) return;
  if (StartsWith(path, "src/common/rng.")) return;  // the one sanctioned home
  static const std::vector<std::string> kTypes = {
      "std::mt19937",       "std::mt19937_64",         "std::minstd_rand",
      "std::random_device", "std::default_random_engine",
      "std::uniform_int_distribution", "std::uniform_real_distribution",
      "std::normal_distribution",      "std::bernoulli_distribution",
      "std::discrete_distribution"};
  static const std::vector<std::string> kCalls = {"rand", "srand", "rand_r",
                                                  "drand48", "time"};
  for (size_t l = 0; l < view.code_lines.size(); ++l) {
    const std::string& line = view.code_lines[l];
    for (const auto& tok : kTypes) {
      if (!FindToken(line, tok).empty()) {
        findings->push_back({"no-raw-random", path, l + 1,
                             "'" + tok +
                                 "' breaks seed-reproducibility; use "
                                 "saged::Rng from common/rng.h"});
      }
    }
    for (const auto& fn : kCalls) {
      if (!FindCall(line, fn).empty()) {
        findings->push_back({"no-raw-random", path, l + 1,
                             "'" + fn +
                                 "()' is a nondeterministic seed source; "
                                 "derive randomness from the config seed "
                                 "via common/rng.h"});
      }
    }
  }
  for (const auto& inc : ParseIncludes(view)) {
    if (!inc.quoted && inc.path == "random") {
      findings->push_back({"no-raw-random", path, inc.line,
                           "<random> must not be included outside "
                           "common/rng.h"});
    }
  }
}

void RuleNoAdhocThread(const FileView& view, std::vector<Finding>* findings) {
  const std::string& path = view.file->path;
  bool in_scope = (StartsWith(path, "src/") && !StartsWith(path, "src/common/")) ||
                  StartsWith(path, "tools/") || StartsWith(path, "bench/");
  if (!in_scope) return;
  static const std::vector<std::string> kSpawns = {
      "std::thread", "std::jthread", "std::async", "pthread_create"};
  for (size_t l = 0; l < view.code_lines.size(); ++l) {
    for (const auto& tok : kSpawns) {
      if (!FindToken(view.code_lines[l], tok).empty()) {
        findings->push_back({"no-adhoc-thread", path, l + 1,
                             "'" + tok +
                                 "' spawns ad-hoc parallelism; submit work "
                                 "to Executor::Shared() (common/executor.h) "
                                 "so span propagation and the determinism "
                                 "contract hold"});
      }
    }
  }
}

void RuleNoIostreamInCore(const FileView& view,
                          std::vector<Finding>* findings) {
  const std::string& path = view.file->path;
  if (!StartsWith(path, "src/")) return;
  if (path == "src/common/logging.cc") return;  // the one sanctioned writer
  static const std::vector<std::string> kStreams = {"std::cout", "std::cerr",
                                                    "std::clog"};
  static const std::vector<std::string> kStdio = {"printf", "fprintf", "puts",
                                                  "fputs", "putchar"};
  for (size_t l = 0; l < view.code_lines.size(); ++l) {
    const std::string& line = view.code_lines[l];
    for (const auto& tok : kStreams) {
      if (!FindToken(line, tok).empty()) {
        findings->push_back({"no-iostream-in-core", path, l + 1,
                             "'" + tok +
                                 "' bypasses the log sink; use SAGED_LOG "
                                 "(common/logging.h)"});
      }
    }
    for (const auto& fn : kStdio) {
      if (!FindCall(line, fn).empty()) {
        findings->push_back({"no-iostream-in-core", path, l + 1,
                             "'" + fn +
                                 "()' writes to the console directly; use "
                                 "SAGED_LOG (common/logging.h)"});
      }
    }
  }
  for (const auto& inc : ParseIncludes(view)) {
    if (!inc.quoted && inc.path == "iostream") {
      findings->push_back({"no-iostream-in-core", path, inc.line,
                           "<iostream> in library code drags in static "
                           "stream constructors; use SAGED_LOG"});
    }
  }
}

std::string ExpectedGuard(const std::string& path) {
  std::string guard = "SAGED_";
  std::string rest = StartsWith(path, "src/") ? path.substr(4) : path;
  for (char c : rest) {
    if (c == '/' || c == '.' || c == '-') {
      guard.push_back('_');
    } else {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

void RuleIncludeHygiene(const FileView& view,
                        const std::set<std::string>& tree_paths,
                        std::vector<Finding>* findings) {
  const std::string& path = view.file->path;
  if (!StartsWith(path, "src/")) return;

  // (a) Headers carry the canonical include guard.
  if (EndsWith(path, ".h")) {
    std::string expected = ExpectedGuard(path);
    bool found = false;
    for (size_t l = 0; l < view.code_lines.size() && l < 10; ++l) {
      const std::string& line = view.code_lines[l];
      size_t pos = line.find("#ifndef");
      if (pos == std::string::npos) continue;
      found = !FindToken(line, expected).empty();
      if (!found) {
        findings->push_back({"include-hygiene", path, l + 1,
                             "include guard should be '" + expected + "'"});
      }
      break;
    }
    if (!found && view.code.find("#ifndef") == std::string::npos) {
      findings->push_back({"include-hygiene", path, 1,
                           "header lacks an include guard ('" +
                               ExpectedGuard(path) + "')"});
    }
  }

  // (b) Layering and (c) resolvable quoted includes.
  const std::string own_layer = SrcLayer(path);
  const int own_rank = LayerRank(own_layer);
  for (const auto& inc : ParseIncludes(view)) {
    if (!inc.quoted) continue;
    size_t slash = inc.path.find('/');
    std::string target_layer =
        slash == std::string::npos ? "" : inc.path.substr(0, slash);
    int target_rank = LayerRank(target_layer);
    if (target_rank < 0) {
      findings->push_back({"include-hygiene", path, inc.line,
                           "quoted include '" + inc.path +
                               "' does not name a src/ layer (common, data, "
                               "ml, text, features, datagen, core, "
                               "kb, baselines, pipeline, serve)"});
      continue;
    }
    if (own_rank >= 0 && target_layer != own_layer &&
        target_rank >= own_rank) {
      findings->push_back(
          {"include-hygiene", path, inc.line,
           "layering inversion: " + own_layer + " (rank " +
               std::to_string(own_rank) + ") must not include " +
               target_layer + " (rank " + std::to_string(target_rank) +
               "); allowed order is common < data/ml/text < "
               "features/datagen < core < kb/baselines < pipeline < serve"});
    }
    if (own_layer == "serve" && !ServeMayInclude(target_layer)) {
      findings->push_back(
          {"include-hygiene", path, inc.line,
           "serve is a thin transport over the engine: it may include only "
           "common, data, core, kb (and serve itself), not " + target_layer});
    }
    if (own_layer == "kb" && !KbMayInclude(target_layer)) {
      findings->push_back(
          {"include-hygiene", path, inc.line,
           "kb extends the core engine's storage: it may include only "
           "common, data, ml, features, core (and kb itself), not " +
               target_layer});
    }
    if (!tree_paths.empty() && tree_paths.count("src/" + inc.path) == 0) {
      findings->push_back({"include-hygiene", path, inc.line,
                           "quoted include '" + inc.path +
                               "' does not resolve to a file in the tree"});
    }
  }
}

// --- no-unchecked-result ---------------------------------------------------

/// Scans src/ headers for functions returning Status / Result<...> and
/// records their names. Token-level: finds the word "Status" (or "Result"
/// followed by balanced <...>) and expects `identifier (` next. Names that
/// ALSO appear with a void return anywhere (e.g. the scalers' Fit vs. the
/// models' Status Fit) go into *ambiguous — the rule skips them rather
/// than guess which overload a call site resolves to.
void CollectStatusReturning(const FileView& view,
                            std::set<std::string>* names,
                            std::set<std::string>* ambiguous) {
  const std::string& void_code = view.code;
  size_t vpos = 0;
  while ((vpos = void_code.find("void", vpos)) != std::string::npos) {
    size_t start = vpos;
    vpos += 4;
    bool left_ok = start == 0 || !IsWordChar(void_code[start - 1]);
    if (!left_ok || (vpos < void_code.size() && IsWordChar(void_code[vpos]))) {
      continue;
    }
    size_t j = vpos;
    while (j < void_code.size() &&
           std::isspace(static_cast<unsigned char>(void_code[j]))) {
      ++j;
    }
    size_t name_start = j;
    while (j < void_code.size() && IsWordChar(void_code[j])) ++j;
    if (j == name_start) continue;
    std::string name = void_code.substr(name_start, j - name_start);
    while (j < void_code.size() &&
           std::isspace(static_cast<unsigned char>(void_code[j]))) {
      ++j;
    }
    if (j < void_code.size() && void_code[j] == '(') ambiguous->insert(name);
  }
  const std::string& code = view.code;
  for (const char* type : {"Status", "Result"}) {
    const std::string needle = type;
    size_t pos = 0;
    while ((pos = code.find(needle, pos)) != std::string::npos) {
      size_t start = pos;
      pos += needle.size();
      bool left_ok = start == 0 || (!IsWordChar(code[start - 1]));
      if (!left_ok) continue;
      size_t j = pos;
      if (needle == "Result") {
        while (j < code.size() && std::isspace(static_cast<unsigned char>(
                                      code[j]))) {
          ++j;
        }
        if (j >= code.size() || code[j] != '<') continue;
        int depth = 0;
        while (j < code.size()) {
          if (code[j] == '<') ++depth;
          if (code[j] == '>') {
            --depth;
            if (depth == 0) {
              ++j;
              break;
            }
          }
          ++j;
        }
      } else if (j < code.size() && IsWordChar(code[j])) {
        continue;  // StatusCode etc.
      }
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j]))) {
        ++j;
      }
      size_t name_start = j;
      while (j < code.size() && IsWordChar(code[j])) ++j;
      if (j == name_start) continue;  // no identifier follows (e.g. "Status _s =")
      std::string name = code.substr(name_start, j - name_start);
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j]))) {
        ++j;
      }
      if (j < code.size() && code[j] == '(') names->insert(name);
    }
  }
}

/// Flags statements of the form `Foo(...);` / `obj.Foo(...);` where Foo is
/// a known Status/Result-returning function: the error is dropped on the
/// floor. Statement-level only (anything feeding an expression, a return,
/// or a macro is fine).
void RuleNoUncheckedResult(const FileView& view,
                           const std::set<std::string>& registry,
                           std::vector<Finding>* findings) {
  const std::string& code = view.code;
  const size_t n = code.size();
  auto line_of = [&](size_t offset) {
    return 1 + static_cast<size_t>(
                   std::count(code.begin(),
                              code.begin() + static_cast<long>(offset), '\n'));
  };
  size_t i = 0;
  bool at_boundary = true;  // file start counts as a statement boundary
  while (i < n) {
    char c = code[i];
    if (c == ';' || c == '{' || c == '}') {
      at_boundary = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (!at_boundary) {
      ++i;
      continue;
    }
    at_boundary = false;
    if (c == '#') {  // preprocessor directive: skip the line
      while (i < n && code[i] != '\n') ++i;
      at_boundary = true;
      continue;
    }
    if (!IsWordChar(c)) continue;
    // Parse an identifier chain: ident ((:: | . | ->) ident)*
    size_t j = i;
    std::string last_ident;
    while (true) {
      size_t ident_start = j;
      while (j < n && IsWordChar(code[j])) ++j;
      if (j == ident_start) break;
      last_ident = code.substr(ident_start, j - ident_start);
      if (j + 1 < n && code[j] == ':' && code[j + 1] == ':') {
        j += 2;
      } else if (j < n && code[j] == '.') {
        j += 1;
      } else if (j + 1 < n && code[j] == '-' && code[j + 1] == '>') {
        j += 2;
      } else {
        break;
      }
    }
    size_t chain_end = j;
    while (j < n && (code[j] == ' ' || code[j] == '\n')) ++j;
    if (j >= n || code[j] != '(' || chain_end == i) {
      i += 1;
      continue;
    }
    // Walk the balanced call parentheses, then require ';'.
    int depth = 0;
    size_t k = j;
    while (k < n) {
      if (code[k] == '(') ++depth;
      if (code[k] == ')') {
        --depth;
        if (depth == 0) {
          ++k;
          break;
        }
      }
      ++k;
    }
    size_t after = k;
    while (after < n &&
           std::isspace(static_cast<unsigned char>(code[after]))) {
      ++after;
    }
    if (after < n && code[after] == ';' && registry.count(last_ident) > 0) {
      findings->push_back(
          {"no-unchecked-result", view.file->path, line_of(i),
           "result of '" + last_ident +
               "(...)' (Status/Result) is discarded; check it, propagate "
               "it, or wrap it in SAGED_CHECK(...ok())"});
    }
    i = j;
  }
}

/// The [[nodiscard]] audit half of no-unchecked-result: the Status and
/// Result types themselves must be class-level [[nodiscard]] so the
/// compiler backs the lint up on every translation unit.
void AuditNodiscardTypes(const std::vector<FileView>& views,
                         std::vector<Finding>* findings) {
  const FileView* status_h = nullptr;
  for (const auto& view : views) {
    if (view.file->path == "src/common/status.h") status_h = &view;
  }
  if (status_h == nullptr) return;  // fixture runs without the real header
  for (const char* type : {"Status", "Result"}) {
    std::string marker = std::string("class [[nodiscard]] ") + type;
    if (status_h->code.find(marker) == std::string::npos) {
      findings->push_back(
          {"no-unchecked-result", "src/common/status.h", 1,
           std::string("class '") + type +
               "' must be declared [[nodiscard]] so dropped errors warn at "
               "compile time"});
    }
  }
}

// --- no-untimed-stage ------------------------------------------------------

/// Stage entry points that must open a telemetry span even though they are
/// class methods (so the pipeline-export scan cannot see them). Qualified
/// `Class::Method` as it appears at the definition site.
const std::set<std::string>& StageEntryPoints() {
  static const std::set<std::string> kStages = {
      "Saged::DetectInMemory", "Saged::DetectStreamed",
      "KnowledgeExtractor::AddDataset", "ErrorDetector::Run",
      "SagedServer::RunDetection"};
  return kStages;
}

/// Pipeline-stage entry points must open a telemetry span — otherwise the
/// stage is invisible to the trace export and the run ledger. Two families:
/// function definitions at namespace scope in src/pipeline/*.cc whose name
/// is declared in a pipeline header (the exported stages), and the named
/// core/baseline stage methods in StageEntryPoints(). Anonymous-namespace
/// helpers and other class methods are exempt.
void RuleNoUntimedStage(const FileView& view,
                        const std::set<std::string>& pipeline_exports,
                        std::vector<Finding>* findings) {
  const std::string& path = view.file->path;
  if (!EndsWith(path, ".cc")) return;
  const bool pipeline_scope = StartsWith(path, "src/pipeline/");
  const bool stage_scope = StartsWith(path, "src/core/") ||
                           StartsWith(path, "src/baselines/") ||
                           StartsWith(path, "src/serve/");
  if (!pipeline_scope && !stage_scope) return;
  const std::string& code = view.code;
  const size_t n = code.size();
  auto line_of = [&](size_t offset) {
    return 1 + static_cast<size_t>(
                   std::count(code.begin(),
                              code.begin() + static_cast<long>(offset), '\n'));
  };
  // Brace stack; each entry flags whether the brace opened a namespace and
  // whether that namespace was anonymous.
  struct Brace {
    bool is_namespace = false;
    bool is_anon_namespace = false;
  };
  std::vector<Brace> stack;
  size_t head_start = 0;  // start of the text since the last ; { }
  size_t i = 0;
  while (i < n) {
    char c = code[i];
    if (c == ';' || c == '}') {
      if (c == '}' && !stack.empty()) stack.pop_back();
      head_start = i + 1;
      ++i;
      continue;
    }
    if (c != '{') {
      ++i;
      continue;
    }
    // Classify this brace from its head text.
    std::string head = code.substr(head_start, i - head_start);
    Brace brace;
    bool all_namespaces =
        std::all_of(stack.begin(), stack.end(),
                    [](const Brace& b) { return b.is_namespace; });
    bool in_anon = std::any_of(stack.begin(), stack.end(), [](const Brace& b) {
      return b.is_anon_namespace;
    });
    if (!FindToken(head, "namespace").empty() &&
        head.find('(') == std::string::npos) {
      brace.is_namespace = true;
      // Anonymous iff no identifier follows the (last) "namespace" token.
      size_t ns = head.rfind("namespace");
      std::string after = head.substr(ns + 9);
      brace.is_anon_namespace =
          after.find_first_not_of(" \n\t") == std::string::npos;
      stack.push_back(brace);
      head_start = i + 1;
      ++i;
      continue;
    }
    // A function definition head at namespace scope: `... Name ( ... )`
    // with an unqualified Name and no '=' at top level (initializers).
    bool is_function = false;
    bool is_stage_method = false;
    std::string name;
    std::string qualified_name;
    size_t name_offset = head_start;  // absolute, for the diagnostic line
    if (all_namespaces && !in_anon) {
      size_t open = head.find('(');
      if (open != std::string::npos) {
        size_t e = open;
        while (e > 0 && (head[e - 1] == ' ' || head[e - 1] == '\n')) --e;
        size_t s = e;
        while (s > 0 && IsWordChar(head[s - 1])) --s;
        name = head.substr(s, e - s);
        name_offset = head_start + s;
        bool qualified = s >= 2 && head[s - 1] == ':' && head[s - 2] == ':';
        bool has_assign = head.find('=') != std::string::npos &&
                          head.find('=') < open;
        static const std::set<std::string> kNotFunctions = {
            "if", "for", "while", "switch", "class", "struct", "enum",
            "union", "catch"};
        is_function = !name.empty() && !qualified && !has_assign &&
                      kNotFunctions.count(name) == 0;
        if (qualified && !has_assign && !name.empty()) {
          // Reconstruct `Class::Method` from the definition head.
          size_t ce = s - 2;
          size_t cs = ce;
          while (cs > 0 && IsWordChar(head[cs - 1])) --cs;
          qualified_name = head.substr(cs, ce - cs) + "::" + name;
          is_stage_method = true;
        }
      }
    }
    bool untimed_candidate =
        (pipeline_scope && is_function && pipeline_exports.count(name) > 0) ||
        (stage_scope && is_stage_method &&
         StageEntryPoints().count(qualified_name) > 0);
    if (untimed_candidate) {
      // Find the matching close brace; the body must open a span.
      int depth = 0;
      size_t k = i;
      while (k < n) {
        if (code[k] == '{') ++depth;
        if (code[k] == '}') {
          --depth;
          if (depth == 0) break;
        }
        ++k;
      }
      std::string body = code.substr(i, k - i);
      if (body.find("SAGED_TRACE_SPAN") == std::string::npos &&
          body.find("ScopedSpan") == std::string::npos) {
        const std::string& shown = is_function ? name : qualified_name;
        findings->push_back(
            {"no-untimed-stage", path, line_of(name_offset),
             "pipeline-stage entry point '" + shown +
                 "' opens no telemetry span; add SAGED_TRACE_SPAN(...) so "
                 "the trace export and run ledger cover it"});
      }
      // Skip past the body's closing brace: statements inside are not
      // namespace-scope heads, and the brace pair never touched the stack.
      i = k < n ? k + 1 : n;
      head_start = i;
      continue;
    }
    stack.push_back(brace);  // plain block/class/initializer brace
    head_start = i + 1;
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Concurrency passes: a shared tokenizer + brace-scope tracker + per-class
// symbol tables back three rules — lock-discipline (SAGED_GUARDED_BY /
// SAGED_REQUIRES / SAGED_EXCLUDES from common/thread_annotations.h),
// executor-capture-lifetime, and no-blocking-in-io-loop.
// ---------------------------------------------------------------------------

/// One lexical token of the blanked code view. Identifiers, numbers, and
/// keywords are `ident`; punctuation is one token per character except the
/// two-character "::" and "->".
struct Token {
  std::string text;
  size_t line = 0;  // 1-based
  bool ident = false;
};

/// Tokenizes the blanked code (comments and literals already spaces).
/// Preprocessor lines — including backslash continuations — are dropped
/// entirely: macro bodies are not code the scope tracker should walk.
std::vector<Token> Tokenize(const FileView& view) {
  std::vector<Token> tokens;
  const std::vector<std::string>& lines = view.code_lines;
  std::vector<bool> skip(lines.size(), false);
  for (size_t l = 0; l < lines.size(); ++l) {
    if (skip[l]) continue;
    size_t b = lines[l].find_first_not_of(" \t");
    if (b == std::string::npos || lines[l][b] != '#') continue;
    size_t m = l;
    skip[m] = true;
    while (m < lines.size()) {
      size_t e = lines[m].find_last_not_of(" \t\r");
      if (e == std::string::npos || lines[m][e] != '\\') break;
      ++m;
      if (m < lines.size()) skip[m] = true;
    }
  }
  for (size_t l = 0; l < lines.size(); ++l) {
    if (skip[l]) continue;
    const std::string& line = lines[l];
    size_t i = 0;
    while (i < line.size()) {
      char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (IsWordChar(c)) {
        size_t s = i;
        while (i < line.size() && IsWordChar(line[i])) ++i;
        tokens.push_back({line.substr(s, i - s), l + 1, true});
        continue;
      }
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back({"::", l + 1, false});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        tokens.push_back({"->", l + 1, false});
        i += 2;
        continue;
      }
      tokens.push_back({std::string(1, c), l + 1, false});
      ++i;
    }
  }
  return tokens;
}

/// Index of the token matching the opening delimiter for the closer at
/// `close` when scanning backward (")" -> "(", "]" -> "["). Returns npos
/// when unbalanced.
size_t MatchBackward(const std::vector<Token>& toks, size_t close,
                     const char* open_text, const char* close_text) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (toks[i].text == close_text) ++depth;
    if (toks[i].text == open_text) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

/// Index of the token closing the group opened at `open` ("(" -> ")" etc.).
size_t MatchForward(const std::vector<Token>& toks, size_t open,
                    const char* open_text, const char* close_text) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == open_text) ++depth;
    if (toks[i].text == close_text) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

/// Last identifier of each top-level comma-separated argument in the paren
/// group opening at `open` — `lock(own.mu)` yields {"mu"},
/// `SAGED_REQUIRES(LogMutex())` yields {"LogMutex"}: mutex identity is the
/// trailing name, so `x.mu` and a lock on `y.mu` match by design (the
/// analyzer is per-name, not per-object).
std::vector<std::string> ArgTailIdents(const std::vector<Token>& toks,
                                       size_t open) {
  std::vector<std::string> out;
  size_t close = MatchForward(toks, open, "(", ")");
  if (close == std::string::npos) return out;
  int depth = 0;
  std::string last;
  for (size_t i = open; i <= close; ++i) {
    const Token& t = toks[i];
    if (t.text == "(" || t.text == "[" || t.text == "<") ++depth;
    if (t.text == ")" || t.text == "]" || t.text == ">") --depth;
    if ((t.text == "," && depth == 1) || i == close) {
      if (!last.empty()) out.push_back(last);
      last.clear();
      continue;
    }
    if (t.ident && depth >= 1) last = t.text;
  }
  return out;
}

bool IsAnnotationMacro(const std::string& t) {
  return t == "SAGED_GUARDED_BY" || t == "SAGED_REQUIRES" ||
         t == "SAGED_EXCLUDES";
}

/// Per-class locking contract, collected from declarations.
struct ClassInfo {
  std::map<std::string, std::string> guarded;  // member -> guarding mutex
  std::vector<std::pair<std::string, size_t>> mutexes;  // (member, line)
};

/// Lock contract of one function (by qualified and bare name).
struct FnContract {
  std::set<std::string> requires_held;  // SAGED_REQUIRES
  std::set<std::string> excludes_held;  // SAGED_EXCLUDES
  bool Empty() const { return requires_held.empty() && excludes_held.empty(); }
};

/// Cross-file symbol tables for the lock-discipline pass: members are
/// declared in headers and used in .cc files, so the maps merge over every
/// src/ file before any body is checked.
struct ConcurrencyContext {
  std::map<std::string, ClassInfo> classes;  // by class name
  std::map<std::string, FnContract> fns;     // "Class::Name" and bare "Name"
  // member -> every mutex any class guards it with (for obj.member accesses
  // where the object's class is unknown).
  std::map<std::string, std::set<std::string>> guarded_any;
};

bool IsMutexTypeName(const std::string& t) {
  return t == "mutex" || t == "recursive_mutex" || t == "shared_mutex" ||
         t == "timed_mutex" || t == "shared_timed_mutex";
}

/// Registers SAGED_REQUIRES / SAGED_EXCLUDES found in a declaration or
/// definition head. The annotated function's name is recovered by walking
/// left from the macro over the parameter list.
void RegisterFnContracts(const std::vector<Token>& toks, size_t begin,
                         size_t end, const std::string& class_name,
                         ConcurrencyContext* ctx) {
  for (size_t i = begin; i < end; ++i) {
    if (!toks[i].ident ||
        (toks[i].text != "SAGED_REQUIRES" && toks[i].text != "SAGED_EXCLUDES")) {
      continue;
    }
    if (i + 1 >= end || toks[i + 1].text != "(") continue;
    std::vector<std::string> mutexes = ArgTailIdents(toks, i + 1);
    // Walk left over the parameter list (and any earlier annotation macro
    // or trailing qualifier) to the function name.
    size_t j = i;
    std::string name;
    while (j > begin) {
      const Token& t = toks[j - 1];
      if (t.ident && (t.text == "const" || t.text == "noexcept" ||
                      t.text == "override" || t.text == "final")) {
        --j;
        continue;
      }
      if (t.text == ")") {
        size_t open = MatchBackward(toks, j - 1, "(", ")");
        if (open == std::string::npos || open < begin) break;
        if (open > begin && toks[open - 1].ident) {
          if (IsAnnotationMacro(toks[open - 1].text)) {
            j = open - 1;  // an earlier annotation; keep walking
            continue;
          }
          name = toks[open - 1].text;
        }
        break;
      }
      break;
    }
    if (name.empty()) continue;
    FnContract* contracts[2] = {nullptr, nullptr};
    contracts[0] = &ctx->fns[name];
    if (!class_name.empty()) contracts[1] = &ctx->fns[class_name + "::" + name];
    for (FnContract* c : contracts) {
      if (c == nullptr) continue;
      for (const std::string& mu : mutexes) {
        if (toks[i].text == "SAGED_REQUIRES") {
          c->requires_held.insert(mu);
        } else {
          c->excludes_held.insert(mu);
        }
      }
    }
  }
}

/// Collection pass (src/ files only): walks class bodies, recording
/// SAGED_GUARDED_BY members, mutex members, and annotated method
/// declarations, and reports mutex members no GUARDED_BY references.
void CollectConcurrency(const FileView& view, const std::vector<Token>& toks,
                        ConcurrencyContext* ctx,
                        std::vector<Finding>* findings) {
  struct Scope {
    bool is_class = false;
    std::string class_name;
    ClassInfo local;  // members seen in THIS body (for the coverage check)
  };
  std::vector<Scope> stack;
  size_t stmt_begin = 0;  // token index of the current statement's start

  auto current_class = [&]() -> std::string {
    for (size_t i = stack.size(); i-- > 0;) {
      if (stack[i].is_class) return stack[i].class_name;
    }
    return "";
  };

  auto process_member_statement = [&](size_t begin, size_t end) {
    if (stack.empty() || !stack.back().is_class) return;
    const std::string& cls = stack.back().class_name;
    for (size_t i = begin; i < end; ++i) {
      const Token& t = toks[i];
      if (t.ident && t.text == "SAGED_GUARDED_BY" && i + 1 < end &&
          toks[i + 1].text == "(" && i > begin) {
        // Member name: nearest identifier to the left (skipping an array
        // extent if present).
        size_t j = i;
        if (toks[j - 1].text == "]") {
          size_t open = MatchBackward(toks, j - 1, "[", "]");
          if (open != std::string::npos && open > begin) j = open;
        }
        if (j > begin && toks[j - 1].ident) {
          std::vector<std::string> args = ArgTailIdents(toks, i + 1);
          if (!args.empty()) {
            const std::string& member = toks[j - 1].text;
            const std::string& mu = args.front();
            stack.back().local.guarded[member] = mu;
            if (!cls.empty()) ctx->classes[cls].guarded[member] = mu;
            ctx->guarded_any[member].insert(mu);
          }
        }
      }
      if (t.ident && IsMutexTypeName(t.text) && i > begin &&
          toks[i - 1].text == "::" && i + 1 < end && toks[i + 1].ident) {
        // `std::mutex name ;` — a `&`/`*` after the type (accessor
        // returning a reference, pointer member) is not an owning member.
        // The terminating ';' sits just past `end`, so a member declaration
        // ends the statement span right after its name.
        const Token& name = toks[i + 1];
        if (i + 2 == end ||
            (i + 2 < end && toks[i + 2].text == "SAGED_GUARDED_BY")) {
          stack.back().local.mutexes.emplace_back(name.text, name.line);
          if (!cls.empty()) {
            ctx->classes[cls].mutexes.emplace_back(name.text, name.line);
          }
        }
      }
    }
    RegisterFnContracts(toks, begin, end, cls, ctx);
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == ";") {
      process_member_statement(stmt_begin, i);
      stmt_begin = i + 1;
      continue;
    }
    if (t == "}") {
      if (!stack.empty()) {
        if (stack.back().is_class) {
          // Coverage: every mutex member must be referenced by at least
          // one GUARDED_BY in the same class body.
          for (const auto& [mu, line] : stack.back().local.mutexes) {
            bool referenced = false;
            for (const auto& [member, guard] : stack.back().local.guarded) {
              if (guard == mu) referenced = true;
            }
            if (!referenced) {
              findings->push_back(
                  {"lock-discipline", view.file->path, line,
                   "std::mutex member '" + mu +
                       "' has no SAGED_GUARDED_BY(" + mu +
                       ") annotation on the state it protects; declare the "
                       "contract (common/thread_annotations.h) or suppress "
                       "with a justification"});
            }
          }
        }
        stack.pop_back();
      }
      stmt_begin = i + 1;
      continue;
    }
    if (t != "{") continue;
    // Classify the brace from its head [stmt_begin, i).
    Scope scope;
    size_t class_kw = std::string::npos;
    bool has_enum = false;
    for (size_t j = stmt_begin; j < i; ++j) {
      if (!toks[j].ident) continue;
      if (toks[j].text == "enum") has_enum = true;
      if (toks[j].text == "class" || toks[j].text == "struct") class_kw = j;
    }
    if (class_kw != std::string::npos && !has_enum) {
      // Name: first identifier after the keyword, skipping attributes and
      // alignas(...) clauses; stop at a base-clause ':'.
      for (size_t j = class_kw + 1; j < i; ++j) {
        if (toks[j].text == "[") {
          size_t close = MatchForward(toks, j, "[", "]");
          if (close == std::string::npos || close >= i) break;
          j = close;
          continue;
        }
        if (toks[j].ident && toks[j].text == "alignas" && j + 1 < i &&
            toks[j + 1].text == "(") {
          size_t close = MatchForward(toks, j + 1, "(", ")");
          if (close == std::string::npos || close >= i) break;
          j = close;
          continue;
        }
        if (toks[j].ident && toks[j].text != "final") {
          scope.is_class = true;
          scope.class_name = toks[j].text;
          break;
        }
        if (toks[j].text == ":") break;
      }
    } else {
      // An inline method head carrying annotations registers here too
      // (`void Drain() SAGED_EXCLUDES(mu_) { ... }` inside a class body).
      RegisterFnContracts(toks, stmt_begin, i, current_class(), ctx);
    }
    stack.push_back(std::move(scope));
    stmt_begin = i + 1;
  }
}

/// Lock scopes, annotated-member accesses, REQUIRES/EXCLUDES call sites,
/// Submit capture lists, and io-loop bodies — one walk per file.
void RuleConcurrency(const FileView& view, const std::vector<Token>& toks,
                     const ConcurrencyContext& ctx,
                     std::vector<Finding>* findings) {
  const std::string& path = view.file->path;
  const bool lock_scope = StartsWith(path, "src/");
  const bool capture_scope = StartsWith(path, "src/") ||
                             StartsWith(path, "tools/") ||
                             StartsWith(path, "bench/") ||
                             StartsWith(path, "examples/");

  // io-loop anchors: `// saged-lint: io-loop` directly above (or trailing
  // on) a function head marks that function's body.
  std::set<size_t> anchors;
  for (const auto& [line, text] : view.comments) {
    size_t lead = text.find_first_not_of("/*! \t");
    if (lead == std::string::npos) continue;
    if (text.compare(lead, 11, "saged-lint:") != 0) continue;
    size_t cursor = lead + 11;
    while (cursor < text.size() && text[cursor] == ' ') ++cursor;
    if (text.compare(cursor, 7, "io-loop") == 0) anchors.insert(line);
  }

  static const std::set<std::string> kLockTypes = {
      "lock_guard", "scoped_lock", "unique_lock", "shared_lock"};
  static const std::set<std::string> kNotFunctionNames = {
      "if", "for", "while", "switch", "catch", "return", "do", "else"};
  static const std::set<std::string> kBlockingCalls = {
      "Wait",       "Drain",     "join",     "get",      "wait",
      "wait_for",   "wait_until", "sleep_for", "sleep_until", "sleep",
      "usleep",     "nanosleep", "send",     "sendto",   "sendmsg",
      "recv",       "recvfrom",  "recvmsg",  "read",     "readv",
      "write",      "writev",    "pread",    "pwrite",   "fsync",
      "fdatasync",  "select",    "flock",    "lockf",    "system"};

  struct Scope {
    enum Kind { kNamespace, kClass, kFunction, kBlock } kind = kBlock;
    std::string class_name;       // kClass / kFunction (method's class)
    std::set<std::string> held;   // locks acquired in this scope
    bool lock_barrier = false;    // deferred lambda: locks do not cross
    bool io_anchored = false;     // kFunction under an io-loop anchor
    bool io_exempt = false;       // lambda inside an anchored fn
    size_t paren_base = 0;        // paren depth when the scope opened
  };
  std::vector<Scope> stack;
  size_t paren_depth = 0;
  size_t stmt_begin = 0;

  auto in_function = [&]() {
    for (size_t i = stack.size(); i-- > 0;) {
      if (stack[i].kind == Scope::kFunction) return true;
      if (stack[i].kind == Scope::kClass ||
          stack[i].kind == Scope::kNamespace) {
        return false;
      }
    }
    return false;
  };
  auto current_class = [&]() -> std::string {
    for (size_t i = stack.size(); i-- > 0;) {
      if (stack[i].kind == Scope::kFunction && !stack[i].class_name.empty()) {
        return stack[i].class_name;
      }
      if (stack[i].kind == Scope::kClass) return stack[i].class_name;
    }
    return "";
  };
  auto held = [&](const std::string& mu) {
    for (size_t i = stack.size(); i-- > 0;) {
      if (stack[i].held.count(mu) > 0) return true;
      if (stack[i].lock_barrier) return false;
    }
    return false;
  };
  auto enclosing_class_at_push = [&]() -> std::string {
    for (size_t i = stack.size(); i-- > 0;) {
      if (stack[i].kind == Scope::kFunction) return stack[i].class_name;
      if (stack[i].kind == Scope::kClass) return stack[i].class_name;
    }
    return "";
  };
  auto enclosing_io = [&]() {
    for (size_t i = stack.size(); i-- > 0;) {
      if (stack[i].kind != Scope::kFunction) continue;
      return stack[i].io_anchored && !stack[i].io_exempt;
    }
    return false;
  };

  // Adds locks declared in statement [begin, end) to the innermost scope.
  auto process_lock_statement = [&](size_t begin, size_t end) {
    if (stack.empty() || (stack.back().kind != Scope::kFunction &&
                          stack.back().kind != Scope::kBlock)) {
      return;
    }
    for (size_t i = begin; i < end; ++i) {
      if (!toks[i].ident || kLockTypes.count(toks[i].text) == 0) continue;
      size_t j = i + 1;
      if (j < end && toks[j].text == "<") {
        size_t close = MatchForward(toks, j, "<", ">");
        if (close == std::string::npos || close >= end) continue;
        j = close + 1;
      }
      if (j >= end || !toks[j].ident) continue;  // needs a variable name
      if (j + 1 >= end || toks[j + 1].text != "(") continue;
      for (const std::string& mu : ArgTailIdents(toks, j + 1)) {
        stack.back().held.insert(mu);
      }
    }
  };

  // The innermost unfinished call in [begin, end): its callee name, or ""
  // — used to recognize cv-wait predicates, whose lambda DOES run under
  // the caller's lock.
  auto open_call = [&](size_t begin, size_t end) -> std::string {
    std::vector<std::string> callees;
    for (size_t i = begin; i < end; ++i) {
      if (toks[i].text == "(") {
        callees.push_back(i > begin && toks[i - 1].ident ? toks[i - 1].text
                                                         : "");
      } else if (toks[i].text == ")") {
        if (!callees.empty()) callees.pop_back();
      }
    }
    return callees.empty() ? "" : callees.back();
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    const std::string& t = tok.text;
    if (t == "(") ++paren_depth;
    if (t == ")" && paren_depth > 0) --paren_depth;

    // ---- per-token checks (function bodies only) ----
    if (tok.ident && in_function()) {
      const bool call = i + 1 < toks.size() && toks[i + 1].text == "(";
      const std::string prev = i > 0 ? toks[i - 1].text : "";

      if (lock_scope && !call && ctx.guarded_any.count(t) > 0 &&
          prev != "::") {
        const bool deref = prev == "." || prev == "->";
        const std::string cls = current_class();
        const ClassInfo* info = nullptr;
        if (!cls.empty()) {
          auto it = ctx.classes.find(cls);
          if (it != ctx.classes.end()) info = &it->second;
        }
        std::set<std::string> needed;
        if (info != nullptr && info->guarded.count(t) > 0) {
          needed.insert(info->guarded.at(t));
        } else if (deref) {
          needed = ctx.guarded_any.at(t);
        }
        if (!needed.empty()) {
          bool ok = false;
          for (const std::string& mu : needed) ok = ok || held(mu);
          if (!ok) {
            findings->push_back(
                {"lock-discipline", path, tok.line,
                 "'" + t + "' is SAGED_GUARDED_BY(" + *needed.begin() +
                     ") but is touched without the lock; take a "
                     "std::lock_guard on " + *needed.begin() +
                     " or annotate the enclosing function SAGED_REQUIRES(" +
                     *needed.begin() + ")"});
          }
        }
      }

      if (lock_scope && call && !IsAnnotationMacro(t)) {
        const FnContract* contract = nullptr;
        std::string shown = t;
        const std::string cls = current_class();
        if (prev == "::" && i >= 2 && toks[i - 2].ident) {
          auto it = ctx.fns.find(toks[i - 2].text + "::" + t);
          if (it != ctx.fns.end()) contract = &it->second;
        } else if (!cls.empty() && prev != "." && prev != "->") {
          auto it = ctx.fns.find(cls + "::" + t);
          if (it != ctx.fns.end()) contract = &it->second;
        }
        if (contract == nullptr) {
          auto it = ctx.fns.find(t);
          if (it != ctx.fns.end()) contract = &it->second;
        }
        if (contract != nullptr && !contract->Empty()) {
          for (const std::string& mu : contract->requires_held) {
            if (!held(mu)) {
              findings->push_back(
                  {"lock-discipline", path, tok.line,
                   "'" + shown + "()' is annotated SAGED_REQUIRES(" + mu +
                       ") but the caller does not hold " + mu});
            }
          }
          for (const std::string& mu : contract->excludes_held) {
            if (held(mu)) {
              findings->push_back(
                  {"lock-discipline", path, tok.line,
                   "'" + shown + "()' is annotated SAGED_EXCLUDES(" + mu +
                       ") — it takes " + mu +
                       " itself — but the caller already holds it"});
            }
          }
        }
      }

      if (capture_scope && t == "Submit" && call && i + 2 < toks.size() &&
          toks[i + 2].text == "[") {
        size_t close = MatchForward(toks, i + 2, "[", "]");
        if (close != std::string::npos) {
          for (size_t j = i + 3; j < close; ++j) {
            if (toks[j].text != "&") continue;
            const std::string& before = toks[j - 1].text;
            if (before == "[" || before == ",") {
              findings->push_back(
                  {"executor-capture-lifetime", path, toks[j].line,
                   "lambda submitted to the executor captures by reference; "
                   "the task can outlive the enclosing frame — capture by "
                   "value (or move), or suppress with a justification if "
                   "the future is joined before the frame exits"});
              break;
            }
          }
        }
      }

      if (enclosing_io() && call && kBlockingCalls.count(t) > 0) {
        findings->push_back(
            {"no-blocking-in-io-loop", path, tok.line,
             "'" + t + "()' can block, and this function is marked "
             "`saged-lint: io-loop`: one stalled call here wedges every "
             "connection; hand the work to the scheduler/executor or "
             "suppress with a justification for why it cannot stall"});
      }
    }

    // ---- scope bookkeeping ----
    const bool at_base =
        stack.empty() ? paren_depth == 0 : paren_depth == stack.back().paren_base;
    if (t == ";" && at_base) {
      process_lock_statement(stmt_begin, i);
      stmt_begin = i + 1;
      continue;
    }
    if (t == "}") {
      if (!stack.empty()) stack.pop_back();
      stmt_begin = i + 1;
      continue;
    }
    if (t != "{") continue;

    Scope scope;
    scope.paren_base = paren_depth;
    const size_t head_begin = stmt_begin;
    const size_t head_end = i;
    const size_t head_line =
        head_begin < head_end ? toks[head_begin].line : tok.line;

    // namespace?
    bool is_namespace = false;
    for (size_t j = head_begin; j < head_end; ++j) {
      if (toks[j].ident && toks[j].text == "namespace") is_namespace = true;
      if (toks[j].text == "(") is_namespace = false;
    }
    // class/struct?
    size_t class_kw = std::string::npos;
    bool has_enum = false;
    for (size_t j = head_begin; j < head_end; ++j) {
      if (!toks[j].ident) continue;
      if (toks[j].text == "enum") has_enum = true;
      if (toks[j].text == "class" || toks[j].text == "struct") class_kw = j;
    }

    if (is_namespace) {
      scope.kind = Scope::kNamespace;
    } else if (class_kw != std::string::npos && !has_enum) {
      scope.kind = Scope::kClass;
      for (size_t j = class_kw + 1; j < head_end; ++j) {
        if (toks[j].text == "[") {
          size_t close = MatchForward(toks, j, "[", "]");
          if (close == std::string::npos || close >= head_end) break;
          j = close;
          continue;
        }
        if (toks[j].ident && toks[j].text == "alignas" && j + 1 < head_end &&
            toks[j + 1].text == "(") {
          size_t close = MatchForward(toks, j + 1, "(", ")");
          if (close == std::string::npos || close >= head_end) break;
          j = close;
          continue;
        }
        if (toks[j].ident && toks[j].text != "final") {
          scope.class_name = toks[j].text;
          break;
        }
        if (toks[j].text == ":") break;
      }
    } else {
      // Lambda or function? Walk back over trailing qualifiers, annotation
      // macros, and a trailing return type to the parameter list.
      size_t j = head_end;
      bool saw_arrow = false;
      while (j > head_begin) {
        const Token& b = toks[j - 1];
        if (b.ident || b.text == "::" || b.text == "<" || b.text == ">" ||
            b.text == "*" || b.text == "&") {
          --j;
          continue;
        }
        if (b.text == "->" && !saw_arrow) {
          saw_arrow = true;
          --j;
          continue;
        }
        break;
      }
      bool classified = false;
      while (j > head_begin && !classified) {
        const Token& b = toks[j - 1];
        if (b.text == "]") {
          scope.kind = Scope::kFunction;
          scope.lock_barrier = true;  // a lambda body runs later/elsewhere
          scope.class_name = enclosing_class_at_push();
          // cv-wait predicates are the exception: wait(lock, [..]{...})
          // runs the lambda with the lock held.
          const std::string callee = open_call(head_begin, head_end);
          if (callee == "wait" || callee == "wait_for" ||
              callee == "wait_until") {
            scope.lock_barrier = false;
          }
          scope.io_exempt = true;
          classified = true;
          break;
        }
        if (b.text == ")") {
          size_t open = MatchBackward(toks, j - 1, "(", ")");
          if (open == std::string::npos || open <= head_begin) break;
          if (toks[open - 1].text == "]") {
            j = open;  // `[..](...)` — re-enter the loop at the capture list
            continue;
          }
          if (!toks[open - 1].ident) break;
          const std::string& name = toks[open - 1].text;
          if (IsAnnotationMacro(name)) {
            j = open - 1;  // skip the macro, keep walking left
            continue;
          }
          if (kNotFunctionNames.count(name) > 0) break;  // if/for/while/...
          scope.kind = Scope::kFunction;
          // Method? `Class::Name(` at the definition site, or an inline
          // body inside a class scope.
          if (open >= 3 && toks[open - 2].text == "::" &&
              toks[open - 3].ident) {
            scope.class_name = toks[open - 3].text;
          } else {
            scope.class_name = enclosing_class_at_push();
          }
          // Seed held locks from the function's SAGED_REQUIRES contract —
          // from the definition head itself and from the declaration.
          ConcurrencyContext head_ctx;
          RegisterFnContracts(toks, head_begin, head_end, scope.class_name,
                              &head_ctx);
          for (const auto& [fn, contract] : head_ctx.fns) {
            for (const std::string& mu : contract.requires_held) {
              scope.held.insert(mu);
            }
          }
          if (!scope.class_name.empty()) {
            auto it = ctx.fns.find(scope.class_name + "::" + name);
            if (it != ctx.fns.end()) {
              for (const std::string& mu : it->second.requires_held) {
                scope.held.insert(mu);
              }
            }
          }
          // io-loop anchor: a directive on the head's first line, the line
          // above it, or anywhere across a multi-line head.
          for (size_t a = head_line > 0 ? head_line - 1 : 0; a <= tok.line;
               ++a) {
            if (anchors.count(a) > 0) scope.io_anchored = true;
          }
          classified = true;
          break;
        }
        break;
      }
      if (!classified) scope.kind = Scope::kBlock;
    }
    stack.push_back(std::move(scope));
    stmt_begin = i + 1;
  }
}

/// Names declared in src/pipeline/*.h — the "exported stage" set.
std::set<std::string> CollectPipelineExports(
    const std::vector<FileView>& views) {
  std::set<std::string> names;
  for (const auto& view : views) {
    const std::string& path = view.file->path;
    if (!StartsWith(path, "src/pipeline/") || !EndsWith(path, ".h")) continue;
    const std::string& code = view.code;
    // Any `Identifier (` at the top level of the header is a declaration;
    // collect the identifiers (parameter names etc. never collide with the
    // pipeline stage names, and extra entries only matter if a same-named
    // definition exists in a pipeline .cc).
    size_t i = 0;
    while (i < code.size()) {
      if (!IsWordChar(code[i])) {
        ++i;
        continue;
      }
      size_t s = i;
      while (i < code.size() && IsWordChar(code[i])) ++i;
      size_t j = i;
      while (j < code.size() && (code[j] == ' ' || code[j] == '\n')) ++j;
      if (j < code.size() && code[j] == '(') {
        names.insert(code.substr(s, i - s));
      }
    }
  }
  return names;
}

// ---------------------------------------------------------------------------
// no-unverified-simd: every function a `*_simd` compilation unit defines at
// named-namespace scope must be named `<Base>Simd`, keep a scalar reference
// sibling `<Base>Scalar` somewhere else in src/, and co-occur with that
// sibling in at least one tests/ file (the parity fixture that proves the
// SIMD path byte-identical). Anonymous-namespace helpers are file-local
// tails of the kernels themselves and are exempt — the enclosing kernel's
// parity fixture covers them.
// ---------------------------------------------------------------------------

struct SimdDefinition {
  std::string name;
  size_t line = 0;  // 1-based line of the function name
};

/// Function definitions at (global or named-namespace) scope in the blanked
/// code: `Identifier ( ... ) [const|noexcept]* {`, skipping anything inside
/// an anonymous namespace or another brace scope (bodies, classes). A
/// heuristic, but a conservative one — a definition it misses (initializer
/// lists, trailing return types) produces no finding, never a false one.
std::vector<SimdDefinition> CollectNamespaceScopeDefinitions(
    const FileView& view) {
  const std::string& code = view.code;
  const size_t n = code.size();
  std::vector<SimdDefinition> defs;
  enum class NsScope { kNamed, kAnon, kOther };
  std::vector<NsScope> stack;
  static const std::set<std::string>& not_a_function =
      *new std::set<std::string>{"if",       "for",      "while",
                                 "switch",   "catch",    "return",
                                 "sizeof",   "alignas",  "alignof",
                                 "decltype", "defined",  "static_assert"};
  auto skip_ws = [&](size_t j) {
    while (j < n &&
           (code[j] == ' ' || code[j] == '\t' || code[j] == '\n')) {
      ++j;
    }
    return j;
  };
  // Classifies the '{' at `brace` from the statement chunk before it: a
  // namespace intro is the last `namespace` word followed only by an
  // (optional, possibly ::-qualified) name up to the brace.
  auto classify_brace = [&](size_t brace, size_t chunk_begin) {
    std::string chunk = code.substr(chunk_begin, brace - chunk_begin);
    size_t ns = chunk.rfind("namespace");
    if (ns == std::string::npos ||
        (ns > 0 && IsWordChar(chunk[ns - 1])) ||
        (ns + 9 < chunk.size() && IsWordChar(chunk[ns + 9]))) {
      return NsScope::kOther;
    }
    bool named = false;
    for (size_t j = ns + 9; j < chunk.size(); ++j) {
      char c = chunk[j];
      if (IsWordChar(c)) {
        named = true;
      } else if (c != ':' && c != ' ' && c != '\t' && c != '\n') {
        return NsScope::kOther;  // e.g. `using namespace x;` never gets here
      }
    }
    return named ? NsScope::kNamed : NsScope::kAnon;
  };
  size_t line = 1;
  size_t chunk_begin = 0;  // start of the current statement chunk
  size_t i = 0;
  while (i < n) {
    char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ';' || c == '}') {
      if (c == '}' && !stack.empty()) stack.pop_back();
      chunk_begin = i + 1;
      ++i;
      continue;
    }
    if (c == '{') {
      stack.push_back(classify_brace(i, chunk_begin));
      chunk_begin = i + 1;
      ++i;
      continue;
    }
    bool at_scope = true;
    for (NsScope s : stack) at_scope = at_scope && s == NsScope::kNamed;
    if (!at_scope || !IsWordChar(c) || (i > 0 && IsWordChar(code[i - 1]))) {
      ++i;
      continue;
    }
    size_t s = i;
    while (i < n && IsWordChar(code[i])) ++i;
    std::string word = code.substr(s, i - s);
    if (not_a_function.count(word) > 0) continue;
    size_t j = skip_ws(i);
    if (j >= n || code[j] != '(') continue;
    size_t depth = 0;
    while (j < n) {
      if (code[j] == '(') ++depth;
      if (code[j] == ')' && --depth == 0) break;
      ++j;
    }
    if (j >= n) break;
    j = skip_ws(j + 1);
    while (j < n && IsWordChar(code[j])) {  // const / noexcept / override
      size_t w = j;
      while (j < n && IsWordChar(code[j])) ++j;
      std::string tail = code.substr(w, j - w);
      if (tail != "const" && tail != "noexcept" && tail != "override" &&
          tail != "final") {
        j = n;  // a return type or declarator — not a definition head
        break;
      }
      j = skip_ws(j);
    }
    if (j < n && code[j] == '{') defs.push_back({std::move(word), line});
  }
  return defs;
}

void RuleNoUnverifiedSimd(const std::vector<FileView>& views,
                          std::vector<Finding>* findings) {
  for (const auto& view : views) {
    const std::string& path = view.file->path;
    if (!StartsWith(path, "src/")) continue;
    if (!EndsWith(path, "_simd.cc") && !EndsWith(path, "_simd.cpp")) continue;
    for (const auto& def : CollectNamespaceScopeDefinitions(view)) {
      if (!EndsWith(def.name, "Simd") || def.name == "Simd") {
        findings->push_back(
            {"no-unverified-simd", path, def.line,
             "function '" + def.name +
                 "' in a *_simd compilation unit must be named '<Base>Simd' "
                 "so its scalar reference sibling '<Base>Scalar' is "
                 "derivable (file-local helpers belong in an anonymous "
                 "namespace)"});
        continue;
      }
      const std::string base = def.name.substr(0, def.name.size() - 4);
      const std::string scalar = base + "Scalar";
      bool scalar_in_src = false;
      bool parity_tested = false;
      for (const auto& other : views) {
        const std::string& p = other.file->path;
        if (StartsWith(p, "src/") && p != path &&
            !FindToken(other.code, scalar).empty()) {
          scalar_in_src = true;
        }
        if (StartsWith(p, "tests/") &&
            !FindToken(other.code, scalar).empty() &&
            !FindToken(other.code, def.name).empty()) {
          parity_tested = true;
        }
      }
      if (!scalar_in_src) {
        findings->push_back(
            {"no-unverified-simd", path, def.line,
             "SIMD kernel '" + def.name +
                 "' has no scalar reference sibling '" + scalar +
                 "' in src/ — every *_simd function keeps a byte-identical "
                 "scalar reference (see features/kernels.h)"});
      } else if (!parity_tested) {
        findings->push_back(
            {"no-unverified-simd", path, def.line,
             "SIMD kernel '" + def.name +
                 "' and its scalar reference '" + scalar +
                 "' never co-occur in a tests/ file — add a parity fixture "
                 "asserting byte-identical results"});
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& RuleNames() {
  static const std::vector<std::string> kRules = {
      "no-raw-random",       "no-adhoc-thread",    "no-unchecked-result",
      "no-iostream-in-core", "include-hygiene",    "no-untimed-stage",
      "lock-discipline",     "executor-capture-lifetime",
      "no-blocking-in-io-loop", "no-unverified-simd", "bad-suppression"};
  return kRules;
}

LintResult RunLint(const std::vector<SourceFile>& files) {
  LintResult result;
  result.files_scanned = files.size();

  std::vector<FileView> views;
  views.reserve(files.size());
  std::set<std::string> tree_paths;
  for (const auto& file : files) {
    views.push_back(BuildView(file));
    tree_paths.insert(file.path);
  }

  // Cross-file context.
  std::set<std::string> status_registry;
  std::set<std::string> ambiguous_names;
  for (const auto& view : views) {
    if (StartsWith(view.file->path, "src/") &&
        EndsWith(view.file->path, ".h")) {
      CollectStatusReturning(view, &status_registry, &ambiguous_names);
    }
  }
  for (const auto& name : ambiguous_names) status_registry.erase(name);
  std::set<std::string> pipeline_exports = CollectPipelineExports(views);

  const std::set<std::string> known_rules(RuleNames().begin(),
                                          RuleNames().end());

  std::vector<Finding> raw;
  AuditNodiscardTypes(views, &raw);

  // Concurrency symbol tables: collect lock annotations from every src/
  // file first (members are declared in headers, used in .cc files), then
  // check bodies.
  std::vector<std::vector<Token>> tokens;
  tokens.reserve(views.size());
  for (const auto& view : views) tokens.push_back(Tokenize(view));
  ConcurrencyContext concurrency;
  for (size_t v = 0; v < views.size(); ++v) {
    if (StartsWith(views[v].file->path, "src/")) {
      CollectConcurrency(views[v], tokens[v], &concurrency, &raw);
    }
  }

  std::map<const FileView*, Suppressions> suppressions;
  for (size_t v = 0; v < views.size(); ++v) {
    const FileView& view = views[v];
    RuleNoRawRandom(view, &raw);
    RuleNoAdhocThread(view, &raw);
    RuleNoIostreamInCore(view, &raw);
    RuleIncludeHygiene(view, tree_paths, &raw);
    RuleNoUncheckedResult(view, status_registry, &raw);
    RuleNoUntimedStage(view, pipeline_exports, &raw);
    RuleConcurrency(view, tokens[v], concurrency, &raw);
    suppressions.emplace(&view, ParseSuppressions(view, known_rules));
  }
  RuleNoUnverifiedSimd(views, &raw);

  // Apply suppressions.
  std::map<std::string, const FileView*> by_path;
  for (const auto& view : views) by_path[view.file->path] = &view;
  for (auto& finding : raw) {
    const FileView* view = by_path.at(finding.path);
    const Suppressions& sup = suppressions.at(view);
    bool allowed = sup.file_allows.count(finding.rule) > 0;
    if (!allowed) {
      auto it = sup.line_allows.find(finding.rule);
      allowed = it != sup.line_allows.end() &&
                it->second.count(finding.line) > 0;
    }
    if (allowed) {
      ++result.suppressed;
    } else {
      result.findings.push_back(std::move(finding));
    }
  }
  for (auto& [view, sup] : suppressions) {
    for (auto& finding : sup.bad) result.findings.push_back(std::move(finding));
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

std::vector<SourceFile> LoadTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
    fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream content;
      content << in.rdbuf();
      std::string rel =
          fs::relative(entry.path(), fs::path(root)).generic_string();
      files.push_back({std::move(rel), content.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

std::string FormatGcc(const LintResult& result) {
  std::ostringstream out;
  for (const auto& finding : result.findings) {
    out << finding.path << ":" << finding.line << ": error: ["
        << finding.rule << "] " << finding.message << "\n";
  }
  out << "saged_lint: " << result.files_scanned << " files, "
      << result.findings.size() << " violation(s), " << result.suppressed
      << " suppressed\n";
  return out.str();
}

std::string FormatJson(const LintResult& result) {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << result.files_scanned
      << ",\n  \"suppressed\": " << result.suppressed
      << ",\n  \"findings\": [";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const auto& f = result.findings[i];
    out << (i == 0 ? "" : ",") << "\n    {\"rule\": " << json::JsonEscaped(f.rule)
        << ", \"path\": " << json::JsonEscaped(f.path)
        << ", \"line\": " << f.line
        << ", \"message\": " << json::JsonEscaped(f.message) << "}";
  }
  out << (result.findings.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

std::string FormatSarif(const LintResult& result) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n"
      << "      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"saged_lint\",\n"
      << "          \"rules\": [";
  const std::vector<std::string>& rules = RuleNames();
  for (size_t i = 0; i < rules.size(); ++i) {
    out << (i == 0 ? "" : ",") << "\n            {\"id\": "
        << json::JsonEscaped(rules[i]) << "}";
  }
  out << "\n          ]\n        }\n      },\n"
      << "      \"results\": [";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const auto& f = result.findings[i];
    out << (i == 0 ? "" : ",") << "\n        {\n"
        << "          \"ruleId\": " << json::JsonEscaped(f.rule) << ",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": " << json::JsonEscaped(f.message)
        << "},\n"
        << "          \"locations\": [\n            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": "
        << json::JsonEscaped(f.path) << "},\n"
        << "                \"region\": {\"startLine\": " << f.line << "}\n"
        << "              }\n            }\n          ]\n        }";
  }
  out << (result.findings.empty() ? "" : "\n      ") << "]\n    }\n  ]\n}\n";
  return out.str();
}

}  // namespace saged::lint
