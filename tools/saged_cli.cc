// saged — command-line front end for the library.
//
//   saged list-datasets
//   saged generate <dataset> [--rows N] [--seed S] [--error-rate R]
//                  [--out-dir DIR]
//   saged generate --corpus N [--rows R] [--seed S] [--error-rate E]
//                  [--out-dir DIR]
//   saged kb build-index --kb kb.bin --out DIR [--index-buckets N]
//                        [--seed S]
//   saged kb stats --kb <kb.bin | store-dir>
//   saged extract  --data a.csv --mask a_mask.csv
//                  [--data b.csv --mask b_mask.csv ...] --out kb.bin
//                  [--extract-threads N] [--cache on|off]
//   saged detect   --kb kb.bin --data dirty.csv --oracle-mask truth.csv
//                  [--budget N] [--detect-threads N] [--out detections.csv]
//                  [--stream] [--block-rows N] [--chunk-bytes N]
//   saged pipeline [--history adult,movies] [--target beers] [--budget N]
//                  [--rows N] [--seed S] [--extract-threads N]
//                  [--detect-threads N]
//
// `generate` writes <name>_dirty.csv, <name>_clean.csv and <name>_mask.csv
// (a 0/1 table marking the injected errors). With `--corpus N` it instead
// mass-produces N synthetic datasets ("corpus-000000"...), each a
// deterministic function of (index, seed), and prints one content hash per
// dataset — the raw material for thousand-dataset knowledge bases.
// `extract` builds and saves a knowledge base from historical datasets
// whose dirty cells are labeled by a mask CSV.
//
// `kb build-index` rewrites a knowledge base (monolithic v1/v2 file, or an
// existing store) as a sharded v3 store: a manifest with the K-Means
// signature index plus one shard file per index bucket. `kb stats` prints
// a store's (or file's) shape. `detect --kb` and `saged_serve --kb` accept
// a store directory anywhere they accept kb.bin, loading shards lazily;
// with `--similarity indexed` matching probes the signature index instead
// of scanning every entry. `detect` loads the knowledge base, spends the labeling budget
// by asking the oracle mask, writes the detected cells as a 0/1 CSV, and —
// since the oracle mask doubles as ground truth — prints P/R/F1.
// `pipeline` runs both phases end-to-end on generated datasets (no files
// needed): extract from the comma-separated `--history` inventory, then
// detect on `--target`.
//
// `detect --stream` switches to the out-of-core path: the dirty CSV is
// never loaded whole; two streaming passes of `--block-rows` rows (default
// 50000), read in `--chunk-bytes` buffers (default 1 MiB), produce
// predictions byte-identical to the in-memory path with a bounded working
// set. All three knobs are DetectionOptions fields from the shared
// registry in core/config_flags.h — the same flags saged_serve accepts
// per request. Every detect invocation builds a core::DetectionRequest
// and funnels through Saged::Run, the single entry point the library,
// the streaming path, the benches and the saged_serve daemon share.
//
// `extract`, `detect` and `pipeline` all accept `--telemetry-out FILE`
// (or `--telemetry-out=FILE`): telemetry is switched on for the run and
// the per-stage timing tree, counters and histograms are written to FILE
// as JSON (schema in DESIGN.md §Observability). They likewise accept
// `--trace-out FILE` (per-span Chrome trace-event JSON, loadable in
// Perfetto / chrome://tracing) and `--runs-dir DIR` (run-ledger directory,
// default `runs`; pass `none` to skip the ledger). Every work command
// appends a run manifest — git SHA, build flags, config hash, dataset
// content digests, wall time, peak RSS, quality metrics — to
// `DIR/ledger.jsonl` (see DESIGN.md §Perf observability).
//
// Those three commands also accept every registered SAGED config knob as a
// flag — `--budget N`, `--seed S`, `--extract-threads N`,
// `--detect-threads N`, `--cache on|off`, `--base-model random_forest`,
// ... — via the shared registry in core/config_flags.h (one place to add a
// knob for both the CLI and the benches). The assembled config is
// validated before any work runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/detector.h"
#include "core/serialization.h"
#include "data/content_hash.h"
#include "data/csv.h"
#include "data/mask_io.h"
#include "datagen/datasets.h"
#include "kb/kb_builder.h"
#include "kb/shard_store.h"
#include "pipeline/evaluation.h"

#include "cli_common.h"

namespace {

using namespace saged;
using cli::Args;
using cli::ConfigFromArgs;
using cli::Fail;
using cli::FlushObservability;
using cli::HexHash;
using cli::Observability;
using cli::ObsFromArgs;

/// Splits "adult,movies" into {"adult", "movies"}.
std::vector<std::string> SplitNames(const std::string& csv) {
  std::vector<std::string> out;
  std::string current;
  for (char c : csv) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

int CmdListDatasets() {
  std::printf("%-14s %8s %5s %6s  error types\n", "name", "rows", "cols",
              "rate");
  for (const auto& name : datagen::AllDatasetNames()) {
    auto spec = datagen::GetDatasetSpec(name);
    if (!spec.ok()) continue;
    std::string types;
    for (auto t : spec->error_types) {
      if (!types.empty()) types += ",";
      types += datagen::ErrorTypeName(t);
    }
    std::printf("%-14s %8zu %5zu %6.2f  %s\n", name.c_str(), spec->rows,
                spec->cols, spec->error_rate, types.c_str());
  }
  return 0;
}

int CmdGenerateCorpus(const Args& args, size_t count) {
  datagen::CorpusOptions opts;
  size_t rows = std::strtoull(args.Get("rows", "0").c_str(), nullptr, 10);
  if (rows > 0) opts.rows = rows;
  opts.seed = std::strtoull(args.Get("seed", "7").c_str(), nullptr, 10);
  double error_rate =
      std::strtod(args.Get("error-rate", "-1").c_str(), nullptr);
  if (error_rate >= 0.0) opts.error_rate = error_rate;
  std::string dir = args.Get("out-dir", ".");
  for (size_t i = 0; i < count; ++i) {
    auto ds = datagen::MakeCorpusDataset(i, opts);
    if (!ds.ok()) return Fail(ds.status());
    std::string base = dir + "/" + ds->spec.name;
    if (auto s = WriteCsv(ds->dirty, base + "_dirty.csv"); !s.ok()) {
      return Fail(s);
    }
    Table mask = MaskToTable(ds->mask, ds->dirty.ColumnNames());
    if (auto s = WriteCsv(mask, base + "_mask.csv"); !s.ok()) return Fail(s);
    Fnv1a h;
    HashTableContent(ds->dirty, &h);
    HashMaskContent(ds->mask, &h);
    std::printf("%s  %s  (%zu rows x %zu cols)\n", ds->spec.name.c_str(),
                HexHash(h.Digest()).c_str(), ds->dirty.NumRows(),
                ds->dirty.NumCols());
  }
  std::printf("wrote %zu corpus dataset(s) to %s\n", count, dir.c_str());
  return 0;
}

int CmdGenerate(const Args& args) {
  size_t corpus = std::strtoull(args.Get("corpus", "0").c_str(), nullptr, 10);
  if (corpus > 0) return CmdGenerateCorpus(args, corpus);
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: saged generate <dataset> [--rows N] ... | "
                         "saged generate --corpus N [--rows R] [--seed S]\n");
    return 1;
  }
  datagen::MakeOptions opts;
  opts.rows = std::strtoull(args.Get("rows", "0").c_str(), nullptr, 10);
  opts.seed = std::strtoull(args.Get("seed", "7").c_str(), nullptr, 10);
  opts.error_rate = std::strtod(args.Get("error-rate", "-1").c_str(), nullptr);
  std::string dir = args.Get("out-dir", ".");
  const std::string& name = args.positional[0];
  auto ds = datagen::MakeDataset(name, opts);
  if (!ds.ok()) return Fail(ds.status());
  std::string base = dir + "/" + name;
  if (auto s = WriteCsv(ds->dirty, base + "_dirty.csv"); !s.ok()) return Fail(s);
  if (auto s = WriteCsv(ds->clean, base + "_clean.csv"); !s.ok()) return Fail(s);
  Table mask = MaskToTable(ds->mask, ds->dirty.ColumnNames());
  if (auto s = WriteCsv(mask, base + "_mask.csv"); !s.ok()) return Fail(s);
  std::printf("wrote %s_{dirty,clean,mask}.csv  (%zu rows x %zu cols, "
              "%.1f%% dirty)\n",
              base.c_str(), ds->dirty.NumRows(), ds->dirty.NumCols(),
              100.0 * ds->mask.ErrorRate());
  return 0;
}

int CmdExtract(const Args& args) {
  auto data_files = args.GetAll("data");
  auto mask_files = args.GetAll("mask");
  std::string out = args.Get("out");
  if (data_files.empty() || data_files.size() != mask_files.size() ||
      out.empty()) {
    std::fprintf(stderr,
                 "usage: saged extract --data a.csv --mask a_mask.csv "
                 "[--data ... --mask ...] --out kb.bin\n");
    return 1;
  }
  Observability obs = ObsFromArgs(args);
  auto config = ConfigFromArgs(args);
  if (!config.ok()) return Fail(config.status());
  StopWatch watch;
  RunManifest manifest;
  manifest.tool = "saged_cli extract";
  manifest.config_hash = HexHash(core::ConfigContentHash(*config));
  manifest.threads = static_cast<uint32_t>(config->extract_threads);
  core::Saged saged(*config);
  for (size_t i = 0; i < data_files.size(); ++i) {
    auto table = ReadCsv(data_files[i]);
    if (!table.ok()) return Fail(table.status());
    auto mask_table = ReadCsv(mask_files[i]);
    if (!mask_table.ok()) return Fail(mask_table.status());
    auto mask = TableToMask(*mask_table);
    if (!mask.ok()) return Fail(mask.status());
    manifest.datasets.emplace_back(data_files[i],
                                   HexHash(TableContentHash(*table)));
    manifest.datasets.emplace_back(mask_files[i],
                                   HexHash(MaskContentHash(*mask)));
    if (auto s = saged.AddHistoricalDataset(*table, *mask); !s.ok()) {
      return Fail(s);
    }
    std::printf("extracted knowledge from %s (%zu rows)\n",
                data_files[i].c_str(), table->NumRows());
  }
  if (auto s = core::SaveKnowledgeBase(saged.knowledge_base(), out); !s.ok()) {
    return Fail(s);
  }
  std::printf("saved %zu base models to %s\n", saged.knowledge_base().size(),
              out.c_str());
  manifest.metrics["base_models"] =
      static_cast<double>(saged.knowledge_base().size());
  manifest.wall_ms = watch.Seconds() * 1000.0;
  manifest.extra["kb_out"] = out;
  return FlushObservability(obs, std::move(manifest));
}

int CmdDetect(const Args& args) {
  std::string kb_path = args.Get("kb");
  std::string data_path = args.Get("data");
  std::string oracle_path = args.Get("oracle-mask");
  if (kb_path.empty() || data_path.empty() || oracle_path.empty()) {
    std::fprintf(stderr,
                 "usage: saged detect --kb kb.bin --data dirty.csv "
                 "--oracle-mask truth.csv [--budget N] [--out out.csv] "
                 "[--stream] [--block-rows N]\n");
    return 1;
  }
  auto oracle_table = ReadCsv(oracle_path);
  if (!oracle_table.ok()) return Fail(oracle_table.status());
  auto truth = TableToMask(*oracle_table);
  if (!truth.ok()) return Fail(truth.status());

  Observability obs = ObsFromArgs(args);
  auto config = ConfigFromArgs(args);
  if (!config.ok()) return Fail(config.status());
  RunManifest manifest;
  manifest.tool = "saged_cli detect";
  manifest.config_hash = HexHash(core::ConfigContentHash(*config));
  manifest.threads = static_cast<uint32_t>(config->detect_threads);
  manifest.datasets.emplace_back(oracle_path,
                                 HexHash(MaskContentHash(*truth)));
  // A store directory (or manifest) gets the lazy sharded path; a plain
  // file keeps the eager monolithic load. The store is declared first so
  // it outlives the engine, whose knowledge base hydrates through it.
  std::unique_ptr<kb::ShardStore> store;
  core::Saged saged(*config);
  std::error_code ec;
  if (std::filesystem::is_directory(kb_path, ec) ||
      std::filesystem::path(kb_path).filename() == kb::kManifestFilename) {
    kb::ShardStore::OpenOptions open_options;
    open_options.cache_shards = config->kb_cache_shards;
    auto opened = kb::ShardStore::Open(kb_path, open_options);
    if (!opened.ok()) return Fail(opened.status());
    store = std::move(*opened);
    auto kb = store->MakeKnowledgeBase();
    if (!kb.ok()) return Fail(kb.status());
    saged.SetKnowledgeBase(std::move(kb).value());
  } else {
    auto kb = core::LoadKnowledgeBase(kb_path);
    if (!kb.ok()) return Fail(kb.status());
    saged.SetKnowledgeBase(std::move(kb).value());
  }

  // Both paths funnel through one DetectionRequest: the registered
  // detection flags (--stream / --block-rows / --chunk-bytes) become
  // DetectionOptions, and Run dispatches on them.
  auto options = cli::DetectionOptionsFromArgs(args);
  if (!options.ok()) return Fail(options.status());
  const bool stream = options->stream;
  auto result = [&]() -> Result<core::DetectionResult> {
    if (stream) {
      // The streaming path never holds the table, so the ledger records
      // the path instead of a content digest.
      manifest.extra["data_stream"] = data_path;
      auto request = core::DetectionRequest::ForCsv(
          data_path, core::MaskOracle(*truth), *options);
      // A truth mask that does not match the data is an InvalidArgument
      // from Run, not an out-of-bounds labeling read.
      request.set_oracle_shape(truth->rows(), truth->cols());
      return saged.Run(request);
    }
    SAGED_ASSIGN_OR_RETURN(Table table, ReadCsv(data_path));
    manifest.datasets.emplace_back(data_path,
                                   HexHash(TableContentHash(table)));
    auto request = core::DetectionRequest::ForTable(
        &table, core::MaskOracle(*truth), *options);
    request.set_oracle_shape(truth->rows(), truth->cols());
    return saged.Run(request);
  }();
  if (!result.ok()) return Fail(result.status());

  auto score = truth->Score(result->mask);
  std::printf("detected %zu dirty cells in %.2fs with %zu labels%s\n",
              result->mask.DirtyCount(), result->seconds,
              result->labeled_tuples, stream ? " (streamed)" : "");
  std::printf("precision=%.3f recall=%.3f f1=%.3f\n", score.Precision(),
              score.Recall(), score.F1());
  manifest.wall_ms = result->seconds * 1000.0;
  manifest.metrics["precision"] = score.Precision();
  manifest.metrics["recall"] = score.Recall();
  manifest.metrics["f1"] = score.F1();
  manifest.metrics["labeled_tuples"] =
      static_cast<double>(result->labeled_tuples);

  std::string out = args.Get("out");
  if (!out.empty()) {
    std::vector<std::string> names;
    names.reserve(result->diagnostics.size());
    for (const auto& diag : result->diagnostics) names.push_back(diag.column);
    Table detections = MaskToTable(result->mask, names);
    if (auto s = WriteCsv(detections, out); !s.ok()) return Fail(s);
    std::printf("wrote detections to %s\n", out.c_str());
  }
  return FlushObservability(obs, std::move(manifest));
}

int CmdPipeline(const Args& args) {
  Observability obs = ObsFromArgs(args);
  auto history = SplitNames(args.Get("history", "adult,movies"));
  std::string target = args.Get("target", "beers");
  if (history.empty()) {
    std::fprintf(stderr, "usage: saged pipeline [--history a,b] "
                         "[--target name] [--budget N] [--rows N] [--seed S] "
                         "[--telemetry-out FILE]\n");
    return 1;
  }

  datagen::MakeOptions gen;
  gen.rows = std::strtoull(args.Get("rows", "0").c_str(), nullptr, 10);
  gen.seed = std::strtoull(args.Get("seed", "7").c_str(), nullptr, 10);

  auto config = ConfigFromArgs(args);
  if (!config.ok()) return Fail(config.status());
  StopWatch watch;
  RunManifest manifest;
  manifest.tool = "saged_cli pipeline";
  manifest.config_hash = HexHash(core::ConfigContentHash(*config));
  manifest.threads = static_cast<uint32_t>(config->detect_threads);

  // Offline phase: extract knowledge from the historical inventory.
  auto saged = pipeline::MakeSagedWithHistory(*config, history, gen);
  if (!saged.ok()) return Fail(saged.status());
  std::printf("extracted %zu base models from %zu historical dataset(s)\n",
              saged->knowledge_base().size(), history.size());

  // Online phase: detect on the target dataset, scored against the
  // injected ground truth.
  auto ds = datagen::MakeDataset(target, gen);
  if (!ds.ok()) return Fail(ds.status());
  {
    Fnv1a h;
    HashTableContent(ds->dirty, &h);
    HashMaskContent(ds->mask, &h);
    manifest.datasets.emplace_back(target, HexHash(h.Digest()));
  }
  auto row = pipeline::RunSaged(*saged, *ds);
  if (!row.ok()) return Fail(row.status());
  std::printf("%s: precision=%.3f recall=%.3f f1=%.3f time=%.2fs\n",
              target.c_str(), row->precision, row->recall, row->f1,
              row->seconds);
  manifest.wall_ms = watch.Seconds() * 1000.0;
  manifest.metrics["precision"] = row->precision;
  manifest.metrics["recall"] = row->recall;
  manifest.metrics["f1"] = row->f1;
  manifest.metrics["detect_seconds"] = row->seconds;
  return FlushObservability(obs, std::move(manifest));
}

int CmdKbBuildIndex(const Args& args) {
  std::string kb_path = args.Get("kb");
  std::string out_dir = args.Get("out");
  if (kb_path.empty() || out_dir.empty()) {
    std::fprintf(stderr,
                 "usage: saged kb build-index --kb kb.bin --out DIR "
                 "[--index-buckets N] [--seed S]\n");
    return 1;
  }
  StopWatch watch;
  kb::BuildOptions options;
  options.n_buckets =
      std::strtoull(args.Get("index-buckets", "0").c_str(), nullptr, 10);
  options.seed = std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10);
  // Any input works: monolithic files load directly, store directories
  // re-shard through the fully-hydrated path.
  auto kb = kb::LoadFullKnowledgeBase(kb_path);
  if (!kb.ok()) return Fail(kb.status());
  if (auto s = kb::WriteShardedStore(*kb, out_dir, options); !s.ok()) {
    return Fail(s);
  }
  auto store = kb::ShardStore::Open(out_dir, kb::ShardStore::OpenOptions{});
  if (!store.ok()) return Fail(store.status());
  kb::StoreStats stats = (*store)->GetStats();
  std::printf("sharded %zu base models into %zu shard(s) under %s "
              "(%zu index buckets, %.2fs)\n",
              stats.n_entries, stats.n_shards, out_dir.c_str(),
              stats.n_buckets, watch.Seconds());
  return 0;
}

int CmdKbStats(const Args& args) {
  std::string kb_path = args.Get("kb");
  if (kb_path.empty()) {
    std::fprintf(stderr, "usage: saged kb stats --kb <kb.bin | store-dir>\n");
    return 1;
  }
  auto store = kb::ShardStore::Open(kb_path, kb::ShardStore::OpenOptions{});
  if (!store.ok()) return Fail(store.status());
  kb::StoreStats stats = (*store)->GetStats();
  std::printf("source:        %s (format v%u%s)\n", kb_path.c_str(),
              stats.version, stats.version == 2 ? ", monolithic" : "");
  std::printf("base models:   %zu\n", stats.n_entries);
  std::printf("index buckets: %zu\n", stats.n_buckets);
  std::printf("shards:        %zu\n", stats.n_shards);
  uint64_t largest = 0;
  for (uint64_t n : stats.shard_sizes) largest = std::max(largest, n);
  if (!stats.shard_sizes.empty()) {
    std::printf("models/shard:  %.1f avg, %llu max\n",
                static_cast<double>(stats.n_entries) /
                    static_cast<double>(stats.shard_sizes.size()),
                static_cast<unsigned long long>(largest));
  }
  return 0;
}

int CmdKb(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: saged kb <build-index|stats> ...\n");
    return 1;
  }
  const std::string& sub = args.positional[0];
  if (sub == "build-index") return CmdKbBuildIndex(args);
  if (sub == "stats") return CmdKbStats(args);
  std::fprintf(stderr, "unknown kb subcommand '%s'\n", sub.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: saged "
                 "<list-datasets|generate|extract|detect|pipeline|kb> ...\n");
    return 1;
  }
  std::string cmd = argv[1];
  cli::SetCommandLine(argc, argv);
  auto args = cli::ParseArgs(argc, argv, 2);
  if (!args.ok()) return Fail(args.status());
  if (cmd == "list-datasets") return CmdListDatasets();
  if (cmd == "generate") return CmdGenerate(*args);
  if (cmd == "extract") return CmdExtract(*args);
  if (cmd == "detect") return CmdDetect(*args);
  if (cmd == "pipeline") return CmdPipeline(*args);
  if (cmd == "kb") return CmdKb(*args);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 1;
}
