#include "tools/report_engine.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace saged::report {

namespace {

/// Minimal recursive-descent JSON reader that only materializes numeric
/// leaves into a flat path map. Tolerant of anything structurally valid;
/// everything non-numeric is parsed and discarded.
class LeafParser {
 public:
  LeafParser(const std::string& text, std::map<std::string, double>* out)
      : text_(text), out_(out) {}

  bool Parse(std::string* error) {
    SkipWs();
    if (!ParseValue("")) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "malformed JSON at byte %zu", pos_);
      *error = buf;
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "trailing content at byte %zu", pos_);
      *error = buf;
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ParseValue(const std::string& path) {
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject(path);
    if (c == '[') return ParseArray(path);
    if (c == '"') return ParseString(nullptr);
    if (c == 't') return ParseLiteral("true");
    if (c == 'f') return ParseLiteral("false");
    if (c == 'n') return ParseLiteral("null");
    return ParseNumber(path);
  }

  bool ParseLiteral(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
      ++pos_;
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_];
        ++pos_;
        if (esc == 'u') {
          for (int k = 0; k < 4; ++k) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (out != nullptr) {
          // Decoded value unused for keys beyond identity; keep the escape
          // verbatim so distinct keys stay distinct.
          out->push_back('\\');
          out->push_back(esc);
        }
        continue;
      }
      if (out != nullptr) out->push_back(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseNumber(const std::string& path) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return false;
    (*out_)[path] = value;
    return true;
  }

  bool ParseObject(const std::string& path) {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      if (!ParseValue(path.empty() ? key : path + "/" + key)) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(const std::string& path) {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    size_t index = 0;
    while (true) {
      SkipWs();
      if (!ParseValue(path + "/" + std::to_string(index++))) return false;
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::map<std::string, double>* out_;
  size_t pos_ = 0;
};

bool IsUnitToken(const std::string& token) {
  return token == "ms" || token == "ns" || token == "us" || token == "s" ||
         token == "seconds" || token == "bytes" || token == "mb" ||
         token == "kb" || token == "gb";
}

std::string EscapeForJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

ParseResult ParseNumericLeaves(const std::string& json) {
  ParseResult result;
  LeafParser parser(json, &result.metrics);
  std::string error;
  if (!parser.Parse(&error)) result.error = error;
  return result;
}

bool IsGatedMetric(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string leaf =
      slash == std::string::npos ? path : path.substr(slash + 1);
  // The leaf itself, then its suffix after the last '_' or '.' — so both
  // "wall_ms" and "bench.cell_ms.p99"'s parent-qualified percentile names
  // ("cell_ms" carries the unit, "p99" inherits from the segment before).
  std::string lowered;
  lowered.reserve(leaf.size());
  for (char c : leaf) {
    lowered += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (IsUnitToken(lowered)) return true;
  std::vector<std::string> parts;
  std::string current;
  for (char c : lowered) {
    if (c == '_' || c == '.') {
      if (!current.empty()) parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) parts.push_back(current);
  for (const auto& part : parts) {
    if (IsUnitToken(part)) return true;
  }
  return false;
}

CompareResult Compare(const std::map<std::string, double>& old_metrics,
                      const std::map<std::string, double>& new_metrics,
                      const CompareOptions& options) {
  CompareResult result;
  for (const auto& [path, old_value] : old_metrics) {
    auto it = new_metrics.find(path);
    if (it == new_metrics.end()) {
      result.only_old.push_back(path);
      continue;
    }
    MetricDelta delta;
    delta.path = path;
    delta.old_value = old_value;
    delta.new_value = it->second;
    delta.delta_pct = old_value != 0.0
                          ? 100.0 * (it->second - old_value) / old_value
                          : 0.0;
    delta.gated = IsGatedMetric(path);
    delta.regression =
        delta.gated && old_value >= options.min_value &&
        it->second > old_value * (1.0 + options.threshold_pct / 100.0);
    if (delta.regression) ++result.regressions;
    result.deltas.push_back(std::move(delta));
  }
  for (const auto& [path, value] : new_metrics) {
    (void)value;
    if (old_metrics.find(path) == old_metrics.end()) {
      result.only_new.push_back(path);
    }
  }
  for (const auto& [path, floor] : options.floors) {
    FloorCheck check;
    check.path = path;
    check.floor = floor;
    auto it = new_metrics.find(path);
    if (it != new_metrics.end()) {
      check.present = true;
      check.value = it->second;
      check.passed = it->second >= floor;
    }
    if (!check.passed) ++result.regressions;
    result.floor_checks.push_back(std::move(check));
  }
  return result;
}

std::string FormatTable(const CompareResult& result,
                        const CompareOptions& options) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%-48s %14s %14s %9s  %s\n", "metric",
                "old", "new", "delta", "status");
  out += line;
  for (const auto& delta : result.deltas) {
    const char* status = "";
    if (delta.regression) {
      status = "REGRESSION";
    } else if (delta.gated) {
      status = "ok";
    }
    std::snprintf(line, sizeof(line), "%-48s %14.4g %14.4g %+8.1f%%  %s\n",
                  delta.path.c_str(), delta.old_value, delta.new_value,
                  delta.delta_pct, status);
    out += line;
  }
  if (!result.only_old.empty() || !result.only_new.empty()) {
    std::snprintf(line, sizeof(line),
                  "unmatched metrics: %zu only in old, %zu only in new\n",
                  result.only_old.size(), result.only_new.size());
    out += line;
  }
  for (const auto& check : result.floor_checks) {
    if (!check.present) {
      std::snprintf(line, sizeof(line),
                    "floor %-41s %14s %14s %9s  FLOOR FAIL (missing)\n",
                    check.path.c_str(), "", "-", "");
    } else {
      std::snprintf(line, sizeof(line),
                    "floor %-41s %14.4g %14.4g %9s  %s\n", check.path.c_str(),
                    check.floor, check.value, "",
                    check.passed ? "ok" : "FLOOR FAIL");
    }
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "%zu regression(s) at threshold %.1f%% (noise floor %g)\n",
                result.regressions, options.threshold_pct, options.min_value);
  out += line;
  return out;
}

std::string FormatJson(const CompareResult& result) {
  std::string out = "{\n  \"deltas\": [";
  for (size_t i = 0; i < result.deltas.size(); ++i) {
    const auto& delta = result.deltas[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"metric\": \"%s\", \"old\": %.17g, "
                  "\"new\": %.17g, \"delta_pct\": %.4g, \"gated\": %s, "
                  "\"regression\": %s}",
                  i ? "," : "", EscapeForJson(delta.path).c_str(),
                  delta.old_value, delta.new_value, delta.delta_pct,
                  delta.gated ? "true" : "false",
                  delta.regression ? "true" : "false");
    out += buf;
  }
  if (!result.deltas.empty()) out += "\n  ";
  out += "],\n  \"only_old\": [";
  for (size_t i = 0; i < result.only_old.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + EscapeForJson(result.only_old[i]) + "\"";
  }
  out += "],\n  \"only_new\": [";
  for (size_t i = 0; i < result.only_new.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + EscapeForJson(result.only_new[i]) + "\"";
  }
  out += "],\n  \"floors\": [";
  for (size_t i = 0; i < result.floor_checks.size(); ++i) {
    const auto& check = result.floor_checks[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"metric\": \"%s\", \"floor\": %.17g, "
                  "\"value\": %.17g, \"present\": %s, \"passed\": %s}",
                  i ? "," : "", EscapeForJson(check.path).c_str(), check.floor,
                  check.value, check.present ? "true" : "false",
                  check.passed ? "true" : "false");
    out += buf;
  }
  if (!result.floor_checks.empty()) out += "\n  ";
  out += "],\n  \"regressions\": " + std::to_string(result.regressions) +
         "\n}\n";
  return out;
}

}  // namespace saged::report
