// Shared plumbing for the reproduction benchmarks: cached dataset
// generation, cached SAGED knowledge bases, and a paper-style report
// printed after google-benchmark's own output.
//
// Every bench binary runs each experimental cell exactly once (wall-clock
// detection time *is* the measured quantity, matching the paper's runtime
// metric) and accumulates rows for a final human-readable table.

#ifndef SAGED_BENCH_BENCH_COMMON_H_
#define SAGED_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/contracts.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "core/config_flags.h"
#include "core/detector.h"
#include "datagen/datasets.h"
#include "pipeline/evaluation.h"

namespace saged::bench {

/// The single bench timing helper: every ad-hoc wall-clock measurement in
/// bench code goes through here (instead of hand-multiplying
/// StopWatch::Seconds()). Returns elapsed milliseconds.
template <typename Fn>
inline double TimeMs(Fn&& fn) {
  StopWatch watch;
  fn();
  return watch.Millis();
}

/// Row cap applied to generated datasets so the full suite finishes in
/// minutes. Relative comparisons (who wins, how curves bend) survive the
/// scale-down; absolute times shrink accordingly.
inline size_t BenchRows(const std::string& dataset) {
  auto spec = datagen::GetDatasetSpec(dataset);
  size_t rows = spec.ok() ? spec->rows : 1000;
  size_t cap = 1500;
  if (dataset == "soccer" || dataset == "tax" || dataset == "restaurants") {
    cap = 4000;  // the scalability datasets keep a larger base
  }
  if (dataset == "soil_moisture") cap = 400;  // 129 columns
  return std::min(rows, cap);
}

/// Cached dataset generation (benches re-use the same inputs across cells).
inline const datagen::Dataset& GetDataset(const std::string& name,
                                          size_t rows = 0,
                                          double error_rate = -1.0,
                                          double outlier_degree = 4.0,
                                          uint64_t seed = 7) {
  static auto& cache = *new std::map<std::string, datagen::Dataset>;
  std::string key = name + "/" + std::to_string(rows) + "/" +
                    std::to_string(error_rate) + "/" +
                    std::to_string(outlier_degree) + "/" +
                    std::to_string(seed);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  datagen::MakeOptions opts;
  opts.rows = rows > 0 ? rows : BenchRows(name);
  opts.error_rate = error_rate;
  opts.outlier_degree = outlier_degree;
  opts.seed = seed;
  auto ds = datagen::MakeDataset(name, opts);
  SAGED_CHECK(ds.ok()) << name << ": " << ds.status().ToString();
  return cache.emplace(key, std::move(ds).value()).first->second;
}

/// Benchmark-friendly SAGED configuration (small embeddings, otherwise the
/// paper's chosen defaults: clustering matcher, random sampling, no
/// augmentation). Any knob registered in core/config_flags.h — the same
/// registry the CLI parses — can be overridden for a whole bench run via
/// SAGED_CONFIG_FLAGS="name=value,..." (e.g. "detect-threads=1,cache=off").
inline core::SagedConfig BenchConfig(size_t budget = 20) {
  core::SagedConfig config;
  config.labeling_budget = budget;
  config.w2v.dim = 6;
  config.w2v.epochs = 2;
  if (const char* overrides = std::getenv("SAGED_CONFIG_FLAGS")) {
    auto status = core::ApplySagedFlagList(overrides, &config);
    SAGED_CHECK(status.ok()) << status.ToString();
  }
  auto valid = config.Validate();
  SAGED_CHECK(valid.ok()) << valid.ToString();
  return config;
}

/// Cached SAGED instance loaded with the paper's default historical
/// inventory (Adult + Movies), keyed by a caller-supplied cache key.
inline core::Saged& SagedWithHistory(const std::string& cache_key,
                                     const core::SagedConfig& config,
                                     const std::vector<std::string>& history) {
  static auto& cache = *new std::map<std::string, std::unique_ptr<core::Saged>>;
  auto it = cache.find(cache_key);
  if (it != cache.end()) return *it->second;
  auto saged = std::make_unique<core::Saged>(config);
  for (const auto& name : history) {
    const auto& ds = GetDataset(name);
    SAGED_CHECK(saged->AddHistoricalDataset(ds.dirty, ds.mask).ok())
        << "extraction failed for " << name;
  }
  return *cache.emplace(cache_key, std::move(saged)).first->second;
}

inline core::Saged& DefaultSaged(size_t budget = 20) {
  return SagedWithHistory("default/" + std::to_string(budget),
                          BenchConfig(budget), {"adult", "movies"});
}

// ---------------------------------------------------------------------------
// Paper-style report accumulation.
// ---------------------------------------------------------------------------

inline std::map<std::string, std::string>& ReportRows() {
  static auto& rows = *new std::map<std::string, std::string>;
  return rows;
}

/// Records one formatted line under a sort key (re-runs overwrite).
inline void Record(const std::string& key, const std::string& line) {
  ReportRows()[key] = line;
}

/// Prints the accumulated table; call after RunSpecifiedBenchmarks.
inline void PrintReport(const char* title, const char* header) {
  std::printf("\n==== %s ====\n%s\n", title, header);
  for (const auto& [key, line] : ReportRows()) {
    std::printf("%s\n", line.c_str());
  }
  std::fflush(stdout);
}

/// Runs SAGED on a dataset and returns the scored row.
inline pipeline::EvalRow RunSagedCell(core::Saged& saged,
                                      const datagen::Dataset& ds) {
  Result<pipeline::EvalRow> row = Status::OK();
  double ms = TimeMs([&] { row = pipeline::RunSaged(saged, ds); });
  SAGED_CHECK(row.ok()) << row.status().ToString();
  SAGED_HISTOGRAM_OBSERVE("bench.cell_ms", ms);
  return *row;
}

/// Runs a baseline on a dataset and returns the scored row.
inline pipeline::EvalRow RunBaselineCell(const std::string& tool,
                                         const datagen::Dataset& ds,
                                         size_t budget) {
  Result<pipeline::EvalRow> row = Status::OK();
  double ms =
      TimeMs([&] { row = pipeline::RunBaseline(tool, ds, budget, /*seed=*/7); });
  SAGED_CHECK(row.ok()) << tool << ": " << row.status().ToString();
  SAGED_HISTOGRAM_OBSERVE("bench.cell_ms", ms);
  return *row;
}

/// Resolved telemetry output destination (SAGED_TELEMETRY_OUT overrides).
inline std::string TelemetryOutPath() {
  const char* env = std::getenv("SAGED_TELEMETRY_OUT");
  return env != nullptr ? env : "BENCH_telemetry.json";
}

/// Fails fast when the telemetry JSON destination cannot be written —
/// before any benchmark cell runs, so a bad SAGED_TELEMETRY_OUT cannot
/// waste a full bench run and then drop its timings on the floor.
inline void CheckTelemetryPathWritable() {
  const std::string path = TelemetryOutPath();
  std::FILE* probe = std::fopen(path.c_str(), "ab");
  SAGED_CHECK(probe != nullptr)
      << "telemetry output path '" << path
      << "' is not writable (set SAGED_TELEMETRY_OUT to a writable file)";
  std::fclose(probe);
}

/// Writes the telemetry collected across the whole bench run. Every bench
/// binary built on SAGED_BENCH_MAIN emits this next to its table so perf
/// PRs can diff per-stage timings; override the destination with
/// SAGED_TELEMETRY_OUT=path.
inline void DumpBenchTelemetry() {
  const std::string path = TelemetryOutPath();
  auto status = telemetry::TelemetryRegistry::Get().DumpJsonToFile(path);
  SAGED_CHECK(status.ok()) << "telemetry dump to '" << path
                           << "' failed: " << status.ToString();
  std::printf("telemetry written to %s\n", path.c_str());
  std::fflush(stdout);
}

}  // namespace saged::bench

/// Custom main: enable telemetry, run benchmarks, print the paper-style
/// table, then dump the per-stage telemetry breakdown as JSON.
#define SAGED_BENCH_MAIN(title, header)                      \
  int main(int argc, char** argv) {                          \
    ::saged::telemetry::SetEnabled(true);                    \
    ::saged::bench::CheckTelemetryPathWritable();            \
    ::benchmark::Initialize(&argc, argv);                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                   \
    ::benchmark::Shutdown();                                 \
    ::saged::bench::PrintReport(title, header);              \
    ::saged::bench::DumpBenchTelemetry();                    \
    return 0;                                                \
  }

#endif  // SAGED_BENCH_BENCH_COMMON_H_
