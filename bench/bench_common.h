// Shared plumbing for the reproduction benchmarks: cached dataset
// generation, cached SAGED knowledge bases, and a paper-style report
// printed after google-benchmark's own output.
//
// Every bench binary runs each experimental cell exactly once (wall-clock
// detection time *is* the measured quantity, matching the paper's runtime
// metric) and accumulates rows for a final human-readable table.
//
// Output handling: every bench accepts the shared tool flags from
// core/config_flags.h — `--out-dir DIR` (artifacts land there instead of
// the CWD; created on demand, the run fails fast with a clear Status when
// it is unwritable), `--telemetry-out FILE`, `--trace-out FILE` (Chrome
// trace-event JSON), and `--runs-dir DIR` (run-ledger destination, default
// `<out-dir>/runs`, `none` disables). SAGED_TELEMETRY_OUT / SAGED_TRACE_OUT
// environment variables are fallbacks for the respective flags. Each run
// appends a provenance manifest (git SHA, config hash, dataset digests,
// wall/RSS, cell-latency percentiles) to the ledger — the input of
// tools/saged_report.

#ifndef SAGED_BENCH_BENCH_COMMON_H_
#define SAGED_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/contracts.h"
#include "common/run_manifest.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/config_flags.h"
#include "core/detector.h"
#include "data/content_hash.h"
#include "datagen/datasets.h"
#include "pipeline/evaluation.h"

namespace saged::bench {

/// The single bench timing helper: every ad-hoc wall-clock measurement in
/// bench code goes through here (instead of hand-multiplying
/// StopWatch::Seconds()). Returns elapsed milliseconds.
template <typename Fn>
inline double TimeMs(Fn&& fn) {
  StopWatch watch;
  fn();
  return watch.Millis();
}

// ---------------------------------------------------------------------------
// Tool flags and output paths.
// ---------------------------------------------------------------------------

/// Values of the shared tool flags, resolved once by InitBenchTooling.
struct BenchToolOptions {
  std::string out_dir = ".";
  std::string telemetry_out;  // resolved absolute-ish path
  std::string trace_out;      // empty = trace capture off
  std::string runs_dir;       // empty = ledger disabled
  std::string tool;           // argv[0] basename
  std::string command_line;   // argv joined
};

inline BenchToolOptions& ToolOptions() {
  static auto& options = *new BenchToolOptions;
  return options;
}

/// Directory every bench artifact is written into (see --out-dir).
inline const std::string& OutDir() { return ToolOptions().out_dir; }

/// `filename` resolved under OutDir().
inline std::string OutPath(const std::string& filename) {
  return OutDir() + "/" + filename;
}

inline std::string BenchHexHash(uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Content digests of every dataset this run generated (key → hex digest),
/// recorded by GetDataset and friends for the run manifest.
inline std::map<std::string, std::string>& DatasetDigests() {
  static auto& digests = *new std::map<std::string, std::string>;
  return digests;
}

inline void RecordDatasetDigest(const std::string& key,
                                const datagen::Dataset& ds) {
  Fnv1a h;
  HashTableContent(ds.clean, &h);
  HashTableContent(ds.dirty, &h);
  HashMaskContent(ds.mask, &h);
  DatasetDigests()[key] = BenchHexHash(h.Digest());
}

/// Row cap applied to generated datasets so the full suite finishes in
/// minutes. Relative comparisons (who wins, how curves bend) survive the
/// scale-down; absolute times shrink accordingly.
inline size_t BenchRows(const std::string& dataset) {
  auto spec = datagen::GetDatasetSpec(dataset);
  size_t rows = spec.ok() ? spec->rows : 1000;
  size_t cap = 1500;
  if (dataset == "soccer" || dataset == "tax" || dataset == "restaurants") {
    cap = 4000;  // the scalability datasets keep a larger base
  }
  if (dataset == "soil_moisture") cap = 400;  // 129 columns
  return std::min(rows, cap);
}

/// Cached dataset generation (benches re-use the same inputs across cells).
inline const datagen::Dataset& GetDataset(const std::string& name,
                                          size_t rows = 0,
                                          double error_rate = -1.0,
                                          double outlier_degree = 4.0,
                                          uint64_t seed = 7) {
  static auto& cache = *new std::map<std::string, datagen::Dataset>;
  std::string key = name + "/" + std::to_string(rows) + "/" +
                    std::to_string(error_rate) + "/" +
                    std::to_string(outlier_degree) + "/" +
                    std::to_string(seed);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  datagen::MakeOptions opts;
  opts.rows = rows > 0 ? rows : BenchRows(name);
  opts.error_rate = error_rate;
  opts.outlier_degree = outlier_degree;
  opts.seed = seed;
  auto ds = datagen::MakeDataset(name, opts);
  SAGED_CHECK(ds.ok()) << name << ": " << ds.status().ToString();
  const auto& cached = cache.emplace(key, std::move(ds).value()).first->second;
  RecordDatasetDigest(key, cached);
  return cached;
}

/// Benchmark-friendly SAGED configuration (small embeddings, otherwise the
/// paper's chosen defaults: clustering matcher, random sampling, no
/// augmentation). Any knob registered in core/config_flags.h — the same
/// registry the CLI parses — can be overridden for a whole bench run via
/// SAGED_CONFIG_FLAGS="name=value,..." (e.g. "detect-threads=1,cache=off").
inline core::SagedConfig BenchConfig(size_t budget = 20) {
  core::SagedConfig config;
  config.labeling_budget = budget;
  config.w2v.dim = 6;
  config.w2v.epochs = 2;
  if (const char* overrides = std::getenv("SAGED_CONFIG_FLAGS")) {
    auto status = core::ApplySagedFlagList(overrides, &config);
    SAGED_CHECK(status.ok()) << status.ToString();
  }
  auto valid = config.Validate();
  SAGED_CHECK(valid.ok()) << valid.ToString();
  return config;
}

/// Cached SAGED instance loaded with the paper's default historical
/// inventory (Adult + Movies), keyed by a caller-supplied cache key.
inline core::Saged& SagedWithHistory(const std::string& cache_key,
                                     const core::SagedConfig& config,
                                     const std::vector<std::string>& history) {
  static auto& cache = *new std::map<std::string, std::unique_ptr<core::Saged>>;
  auto it = cache.find(cache_key);
  if (it != cache.end()) return *it->second;
  auto saged = std::make_unique<core::Saged>(config);
  for (const auto& name : history) {
    const auto& ds = GetDataset(name);
    SAGED_CHECK(saged->AddHistoricalDataset(ds.dirty, ds.mask).ok())
        << "extraction failed for " << name;
  }
  return *cache.emplace(cache_key, std::move(saged)).first->second;
}

inline core::Saged& DefaultSaged(size_t budget = 20) {
  return SagedWithHistory("default/" + std::to_string(budget),
                          BenchConfig(budget), {"adult", "movies"});
}

// ---------------------------------------------------------------------------
// Paper-style report accumulation.
// ---------------------------------------------------------------------------

inline std::map<std::string, std::string>& ReportRows() {
  static auto& rows = *new std::map<std::string, std::string>;
  return rows;
}

/// Records one formatted line under a sort key (re-runs overwrite).
inline void Record(const std::string& key, const std::string& line) {
  ReportRows()[key] = line;
}

/// Prints the accumulated table; call after RunSpecifiedBenchmarks.
inline void PrintReport(const char* title, const char* header) {
  std::printf("\n==== %s ====\n%s\n", title, header);
  for (const auto& [key, line] : ReportRows()) {
    std::printf("%s\n", line.c_str());
  }
  std::fflush(stdout);
}

/// Runs SAGED on a dataset and returns the scored row.
inline pipeline::EvalRow RunSagedCell(core::Saged& saged,
                                      const datagen::Dataset& ds) {
  Result<pipeline::EvalRow> row = Status::OK();
  double ms = TimeMs([&] { row = pipeline::RunSaged(saged, ds); });
  SAGED_CHECK(row.ok()) << row.status().ToString();
  SAGED_HISTOGRAM_OBSERVE("bench.cell_ms", ms);
  return *row;
}

/// Runs a baseline on a dataset and returns the scored row.
inline pipeline::EvalRow RunBaselineCell(const std::string& tool,
                                         const datagen::Dataset& ds,
                                         size_t budget) {
  Result<pipeline::EvalRow> row = Status::OK();
  double ms =
      TimeMs([&] { row = pipeline::RunBaseline(tool, ds, budget, /*seed=*/7); });
  SAGED_CHECK(row.ok()) << tool << ": " << row.status().ToString();
  SAGED_HISTOGRAM_OBSERVE("bench.cell_ms", ms);
  return *row;
}

// ---------------------------------------------------------------------------
// Bench main: flag stripping, output setup, telemetry / trace / manifest.
// ---------------------------------------------------------------------------

/// Resolved telemetry output destination (--telemetry-out flag, then
/// SAGED_TELEMETRY_OUT, then BENCH_telemetry.json under --out-dir).
inline std::string TelemetryOutPath() {
  if (!ToolOptions().telemetry_out.empty()) return ToolOptions().telemetry_out;
  const char* env = std::getenv("SAGED_TELEMETRY_OUT");
  return env != nullptr ? env : OutPath("BENCH_telemetry.json");
}

/// Consumes the shared tool flags (`--name value` / `--name=value`) from
/// argv before google-benchmark sees them; unknown flags pass through.
inline void StripToolFlags(int* argc, char** argv) {
  auto& options = ToolOptions();
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string a = argv[i];
    std::string name;
    std::string value;
    bool has_value = false;
    if (a.rfind("--", 0) == 0) {
      size_t eq = a.find('=');
      if (eq != std::string::npos) {
        name = a.substr(2, eq - 2);
        value = a.substr(eq + 1);
        has_value = true;
      } else {
        name = a.substr(2);
      }
    }
    if (!core::IsSagedToolFlag(name)) {
      argv[out++] = argv[i];
      continue;
    }
    if (!has_value) {
      SAGED_CHECK(i + 1 < *argc) << "flag --" << name << " needs a value";
      value = argv[++i];
    }
    if (name == "out-dir") {
      options.out_dir = value;
    } else if (name == "telemetry-out") {
      options.telemetry_out = value;
    } else if (name == "trace-out") {
      options.trace_out = value;
    } else if (name == "runs-dir") {
      options.runs_dir = value;
    }
  }
  *argc = out;
  argv[out] = nullptr;
}

/// Fails when `path` cannot be opened for writing (probed with "ab" so an
/// existing file is left untouched) — before any benchmark cell runs, so a
/// bad destination cannot waste a full bench run and then drop its timings
/// on the floor.
[[nodiscard]] inline Status CheckPathWritable(const std::string& path,
                                              const char* what) {
  std::FILE* probe = std::fopen(path.c_str(), "ab");
  if (probe == nullptr) {
    return Status::IoError(std::string(what) + " path '" + path +
                           "' is not writable");
  }
  std::fclose(probe);
  return Status::OK();
}

/// Parses the shared tool flags, creates --out-dir, resolves the trace /
/// telemetry / ledger destinations and probes them for writability.
[[nodiscard]] inline Status InitBenchTooling(int* argc, char** argv) {
  auto& options = ToolOptions();
  options.tool = "bench";
  if (*argc > 0) {
    std::string argv0 = argv[0];
    size_t slash = argv0.find_last_of('/');
    options.tool =
        slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
  }
  for (int i = 0; i < *argc; ++i) {
    if (i) options.command_line += ' ';
    options.command_line += argv[i];
  }
  StripToolFlags(argc, argv);
  std::error_code ec;
  std::filesystem::create_directories(options.out_dir, ec);
  if (ec) {
    return Status::IoError("cannot create --out-dir '" + options.out_dir +
                           "': " + ec.message());
  }
  SAGED_RETURN_NOT_OK(
      CheckPathWritable(OutPath(".saged_bench_probe"), "--out-dir"));
  std::remove(OutPath(".saged_bench_probe").c_str());
  if (options.trace_out.empty()) {
    if (const char* env = std::getenv("SAGED_TRACE_OUT")) {
      options.trace_out = env;
    }
  }
  if (options.runs_dir.empty()) options.runs_dir = OutPath("runs");
  if (options.runs_dir == "none") options.runs_dir.clear();
  SAGED_RETURN_NOT_OK(CheckPathWritable(TelemetryOutPath(), "telemetry"));
  if (!options.trace_out.empty()) {
    SAGED_RETURN_NOT_OK(CheckPathWritable(options.trace_out, "trace"));
    telemetry::SetTraceEventsEnabled(true);
  }
  return Status::OK();
}

/// Writes the telemetry collected across the whole bench run. Every bench
/// binary built on SAGED_BENCH_MAIN emits this next to its table so perf
/// PRs can diff per-stage timings.
inline void DumpBenchTelemetry() {
  const std::string path = TelemetryOutPath();
  auto status = telemetry::TelemetryRegistry::Get().DumpJsonToFile(path);
  SAGED_CHECK(status.ok()) << "telemetry dump to '" << path
                           << "' failed: " << status.ToString();
  std::printf("telemetry written to %s\n", path.c_str());
  std::fflush(stdout);
}

/// Writes the Chrome trace-event file when --trace-out / SAGED_TRACE_OUT
/// asked for one.
inline void DumpBenchTrace() {
  const std::string& path = ToolOptions().trace_out;
  if (path.empty()) return;
  auto status = telemetry::WriteChromeTrace(path);
  SAGED_CHECK(status.ok()) << "trace dump to '" << path
                           << "' failed: " << status.ToString();
  std::printf("chrome trace written to %s\n", path.c_str());
  std::fflush(stdout);
}

/// Extra metrics a bench wants in its run manifest (requests/s, client
/// counts, ...). Merged into manifest.metrics by AppendBenchManifest.
inline std::map<std::string, double>& BenchMetrics() {
  static auto& metrics = *new std::map<std::string, double>;
  return metrics;
}

/// Telemetry histograms summarized into the run manifest (count / mean /
/// p50 / p90 / p99 / max under "<name>.<stat>"). Benches that time
/// something other than detection cells append their histogram here
/// (bench_serve adds serve.request_ms).
inline std::vector<std::string>& ManifestHistograms() {
  static auto& names = *new std::vector<std::string>{"bench.cell_ms"};
  return names;
}

/// Teardown hooks run by BenchMain after the benchmarks finish but before
/// the report / manifest flush — for benches that keep live machinery
/// (bench_serve's in-process server) across cells.
inline std::vector<std::function<void()>>& AtBenchExit() {
  static auto& hooks = *new std::vector<std::function<void()>>;
  return hooks;
}

/// Appends this run's provenance manifest to the ledger (see
/// common/run_manifest.h); the `<tool>-last.json` copy is what check-perf /
/// saged_report diff against a baseline.
[[nodiscard]] inline Status AppendBenchManifest(double wall_ms) {
  const auto& options = ToolOptions();
  if (options.runs_dir.empty()) return Status::OK();
  RunManifest manifest;
  manifest.tool = options.tool;
  manifest.command_line = options.command_line;
  core::SagedConfig config = BenchConfig();
  manifest.config_hash = BenchHexHash(core::ConfigContentHash(config));
  manifest.threads = static_cast<uint32_t>(config.detect_threads);
  for (const auto& [key, digest] : DatasetDigests()) {
    manifest.datasets.emplace_back(key, digest);
  }
  manifest.wall_ms = wall_ms;
  manifest.peak_rss_bytes = telemetry::PeakRssBytes();
  for (const auto& name : ManifestHistograms()) {
    auto stats = telemetry::TelemetryRegistry::Get().HistogramSnapshot(name);
    if (stats.count == 0) continue;
    manifest.metrics[name + ".count"] = static_cast<double>(stats.count);
    manifest.metrics[name + ".mean"] = stats.mean;
    manifest.metrics[name + ".p50"] = stats.p50;
    manifest.metrics[name + ".p90"] = stats.p90;
    manifest.metrics[name + ".p99"] = stats.p99;
    manifest.metrics[name + ".max"] = stats.max;
  }
  for (const auto& [name, value] : BenchMetrics()) {
    manifest.metrics[name] = value;
  }
  manifest.extra["telemetry_out"] = TelemetryOutPath();
  if (!options.trace_out.empty()) {
    manifest.extra["trace_out"] = options.trace_out;
  }
  SAGED_RETURN_NOT_OK(AppendRunManifest(options.runs_dir, manifest));
  std::printf("run manifest appended to %s/ledger.jsonl\n",
              options.runs_dir.c_str());
  std::fflush(stdout);
  return Status::OK();
}

/// Shared bench main: enable telemetry, honor the tool flags, run the
/// benchmarks, print the paper-style table, then flush telemetry, trace,
/// and the run-ledger manifest.
inline int BenchMain(int argc, char** argv, const char* title,
                     const char* header) {
  telemetry::SetEnabled(true);
  if (auto s = InitBenchTooling(&argc, argv); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  StopWatch watch;
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  for (const auto& hook : AtBenchExit()) hook();
  PrintReport(title, header);
  DumpBenchTelemetry();
  DumpBenchTrace();
  if (auto s = AppendBenchManifest(watch.Seconds() * 1000.0); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace saged::bench

/// Custom main: see saged::bench::BenchMain.
#define SAGED_BENCH_MAIN(title, header)                      \
  int main(int argc, char** argv) {                          \
    return ::saged::bench::BenchMain(argc, argv, title, header); \
  }

#endif  // SAGED_BENCH_BENCH_COMMON_H_
