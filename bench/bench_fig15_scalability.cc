// Figure 15: scalability — detection time (and F1) across data fractions of
// the large datasets (Restaurants, Soccer, Flights, Tax). Expected shape:
// SAGED far cheaper than ED2 at every fraction with flat-ish growth; dBoost
// and Raha in between; SAGED's F1 stays high where ED2's degrades on the
// biggest inputs.

#include <cstring>

#include "bench/bench_common.h"
#include "common/contracts.h"
#include "common/strings.h"
#include "data/csv.h"
#include "features/char_space.h"
#include "features/featurizer.h"
#include "features/frozen_stats.h"
#include "features/kernels.h"
#include "text/tokenizer.h"
#include "text/word2vec.h"

namespace saged::bench {
namespace {

const std::vector<std::string>& EvalSets() {
  static const auto& v = *new std::vector<std::string>{
      "restaurants", "soccer", "flights", "tax"};
  return v;
}

const std::vector<std::string>& Tools() {
  static const auto& v =
      *new std::vector<std::string>{"saged", "ed2", "raha", "dboost", "mink"};
  return v;
}

const datagen::Dataset& FractionDataset(const std::string& name,
                                        double fraction) {
  static auto& cache = *new std::map<std::string, datagen::Dataset>;
  std::string key = name + "/" + std::to_string(fraction);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const auto& base = GetDataset(name);
  datagen::Dataset ds;
  ds.spec = base.spec;
  ds.dirty = base.dirty.HeadFraction(fraction);
  ds.clean = base.clean.HeadFraction(fraction);
  ds.mask = base.mask.HeadRows(ds.dirty.NumRows());
  ds.rules = base.rules;
  ds.domains = base.domains;
  return cache.emplace(key, std::move(ds)).first->second;
}

void BM_Fig15(benchmark::State& state) {
  const std::string tool = Tools()[static_cast<size_t>(state.range(0))];
  const double fraction = static_cast<double>(state.range(1)) / 100.0;
  const std::string dataset = EvalSets()[static_cast<size_t>(state.range(2))];
  const auto& ds = FractionDataset(dataset, fraction);

  pipeline::EvalRow row;
  for (auto _ : state) {
    if (tool == "saged") {
      row = RunSagedCell(DefaultSaged(20), ds);
    } else {
      row = RunBaselineCell(tool, ds, 20);
    }
  }
  state.counters["detect_s"] = row.seconds;
  state.counters["f1"] = row.f1;
  state.counters["rows"] = static_cast<double>(ds.dirty.NumRows());
  state.SetLabel(dataset + "/" + tool + "/frac=" + std::to_string(fraction));
  Record(StrFormat("%s/%s/%03ld", dataset.c_str(), tool.c_str(),
                   state.range(1)),
         StrFormat("%-12s %-8s frac=%.2f rows=%-6zu time=%.2fs  f1=%.3f",
                   dataset.c_str(), tool.c_str(), fraction,
                   ds.dirty.NumRows(), row.seconds, row.f1));
}

BENCHMARK(BM_Fig15)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {25, 50, 75, 100}, {0, 1, 2, 3}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

/// Streamed-rows companion sweep: the in-memory detector against the
/// out-of-core DetectStream path on the same generated dataset, reporting
/// rows/sec, per-cell peak RSS (VmHWM, rewound before each cell via
/// /proc/self/clear_refs where the kernel allows), F1, and — for the
/// streamed cells — whether the mask is byte-identical to the in-memory
/// cell of the same size, which google-benchmark's ascending argument order
/// guarantees ran first. Methodology in EXPERIMENTS.md §Streamed fig-15.
void BM_Fig15Streamed(benchmark::State& state) {
  const std::string stream_csv = OutPath("BENCH_fig15_stream_input.csv");
  static constexpr size_t kBlockRows = 10000;
  const bool streamed = state.range(0) == 1;
  const size_t rows = static_cast<size_t>(state.range(1));
  const auto& ds = GetDataset("soccer", rows);
  core::Saged& saged = DefaultSaged(20);
  if (streamed) {
    SAGED_CHECK(WriteCsv(ds.dirty, stream_csv).ok());
  }

  const bool rss_rewound = telemetry::TryResetPeakRss();
  const uint64_t rss_floor = telemetry::CurrentRssBytes();
  Result<core::DetectionResult> result = Status::OK();
  double ms = 0.0;
  for (auto _ : state) {
    ms = TimeMs([&] {
      if (streamed) {
        core::DetectionOptions options;
        options.block_rows = kBlockRows;
        result = saged.DetectStream(stream_csv, core::MaskOracle(ds.mask),
                                    options);
      } else {
        result = saged.Detect(ds.dirty, core::MaskOracle(ds.mask));
      }
    });
  }
  SAGED_CHECK(result.ok()) << result.status().ToString();
  const uint64_t peak = telemetry::PeakRssBytes();
  const double peak_mb = static_cast<double>(peak) / (1024.0 * 1024.0);
  // Growth above the cell's starting RSS: attributable to this cell even
  // when allocator retention from earlier cells inflates the absolute peak.
  const double delta_mb =
      static_cast<double>(peak > rss_floor ? peak - rss_floor : 0) /
      (1024.0 * 1024.0);
  auto score = ds.mask.Score(result->mask);

  // Byte-identity cross-check between the two paths at each size.
  static auto& inmem_masks = *new std::map<size_t, ErrorMask>;
  double identical = -1.0;  // -1 = not applicable (in-memory cell)
  if (!streamed) {
    inmem_masks[rows] = result->mask;
  } else if (auto it = inmem_masks.find(rows); it != inmem_masks.end()) {
    identical = it->second == result->mask ? 1.0 : 0.0;
    SAGED_CHECK(identical == 1.0)
        << "streamed mask diverged from in-memory at rows=" << rows;
  }

  const double rows_per_s = ms > 0.0 ? 1000.0 * static_cast<double>(rows) / ms : 0.0;
  state.counters["rows_per_s"] = rows_per_s;
  state.counters["peak_rss_mb"] = peak_mb;
  state.counters["rss_delta_mb"] = delta_mb;
  state.counters["f1"] = score.F1();
  state.counters["identical"] = identical;
  const char* path_name = streamed ? "stream" : "inmem";
  state.SetLabel(StrFormat("soccer/%s/rows=%zu", path_name, rows));
  Record(StrFormat("zz-stream/%07zu/%s", rows, path_name),
         StrFormat("streamed-sweep %-6s rows=%-7zu time=%8.1fms "
                   "rows/s=%9.0f peak_rss=%7.1fMB%s (+%.1fMB) f1=%.3f "
                   "identical=%s",
                   path_name, rows, ms, rows_per_s, peak_mb,
                   rss_rewound ? "" : "*", delta_mb, score.F1(),
                   identical < 0.0 ? "n/a" : (identical > 0.0 ? "yes" : "NO")));
}

BENCHMARK(BM_Fig15Streamed)
    ->ArgsProduct({{0, 1}, {10000, 50000}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

/// Offline-phase companion sweep: knowledge-extraction wall time against
/// `extract_threads` on the default historical inventory. Each cell builds a
/// fresh Saged (empty knowledge base, so the extraction cache cannot short
/// the measurement) and ingests the same history; the per-stage split
/// (content_hash / train_w2v / base_models) lands in BENCH_telemetry.json.
/// The knowledge base is bit-identical at every thread count, so the sweep
/// measures scheduling alone.
void BM_Fig15OfflineExtraction(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  core::SagedConfig config = BenchConfig(20);
  config.extract_threads = threads;
  const auto& adult = GetDataset("adult");
  const auto& soccer = GetDataset("soccer");

  double ms = 0.0;
  for (auto _ : state) {
    core::Saged saged(config);
    ms = TimeMs([&] {
      SAGED_CHECK(saged.AddHistoricalDataset(adult.dirty, adult.mask).ok());
      SAGED_CHECK(saged.AddHistoricalDataset(soccer.dirty, soccer.mask).ok());
    });
  }

  // Speedup is relative to the threads=1 cell, which google-benchmark runs
  // first (ascending Arg order).
  static double sequential_ms = 0.0;
  if (threads == 1) sequential_ms = ms;
  double speedup = sequential_ms > 0.0 ? sequential_ms / ms : 1.0;
  state.counters["extract_ms"] = ms;
  state.counters["speedup"] = speedup;
  state.SetLabel("offline/threads=" + std::to_string(threads));
  Record(StrFormat("zzz-offline/%02zu", threads),
         StrFormat("offline-extract threads=%-2zu time=%8.1fms speedup=%.2fx",
                   threads, ms, speedup));
}

BENCHMARK(BM_Fig15OfflineExtraction)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ---------------------------------------------------------------------------
// Featurization-mode sweep: pure featurization throughput of the scalar,
// dictionary, and auto paths on the high-repetition corpus profile
// (CorpusOptions::value_pool, pinned by tests/datagen_golden_test.cc). The
// scalar cell runs first (ascending arg order) and keeps its matrices; every
// later mode is asserted byte-identical in-process before its throughput
// counts. The dict cell publishes `featurize.dict_speedup` into the run
// manifest — the perfsmoke_featurize floor (saged_report --floor) gates on
// it, so a regression that erodes the dictionary win fails ctest, not just
// a dashboard.
// ---------------------------------------------------------------------------

constexpr size_t kFeaturizeRows = 4096;
constexpr size_t kFeaturizePool = 16;  // distinct ratio ~ pool/rows ≈ 0.004
constexpr size_t kFeaturizeSweeps = 4;

/// Everything the mode cells share: the pooled corpus table, a trained
/// embedding, the registered char space, and per-column frozen stats. Built
/// once — the sweep measures featurization alone, not fitting.
struct FeaturizeFixture {
  datagen::Dataset ds;
  text::Word2Vec w2v{{.dim = 6, .epochs = 2}, 3};
  features::CharSpace space{64};
  std::vector<features::FrozenColumnStats> stats;
};

FeaturizeFixture& GetFeaturizeFixture() {
  static auto& fx = *new FeaturizeFixture;
  static bool built = false;
  if (built) return fx;
  built = true;
  datagen::CorpusOptions opts;
  opts.rows = kFeaturizeRows;
  opts.value_pool = kFeaturizePool;
  opts.seed = 7;
  auto ds = datagen::MakeCorpusDataset(0, opts);
  SAGED_CHECK(ds.ok()) << ds.status().ToString();
  fx.ds = std::move(ds).value();
  RecordDatasetDigest(StrFormat("%s/rows=%zu/pool=%zu",
                                datagen::CorpusDatasetName(0).c_str(),
                                kFeaturizeRows, kFeaturizePool),
                      fx.ds);
  std::vector<std::vector<std::string>> docs;
  docs.reserve(fx.ds.dirty.NumRows());
  for (size_t r = 0; r < fx.ds.dirty.NumRows(); ++r) {
    docs.push_back(text::TupleTokens(fx.ds.dirty.Row(r)));
  }
  SAGED_CHECK(fx.w2v.Train(docs).ok());
  for (const auto& column : fx.ds.dirty.columns()) {
    features::ColumnFeaturizer::RegisterChars(column, &fx.space);
  }
  for (const auto& column : fx.ds.dirty.columns()) {
    features::ColumnStatsBuilder builder;
    for (const auto& cell : column.values()) builder.Observe(cell);
    auto frozen = builder.Finalize();
    SAGED_CHECK(frozen.ok()) << column.name() << ": "
                             << frozen.status().ToString();
    fx.stats.push_back(std::move(frozen).value());
  }
  return fx;
}

void BM_Fig15FeaturizeMode(benchmark::State& state) {
  static constexpr const char* kModeNames[] = {"scalar", "dict", "auto"};
  const auto mode = static_cast<features::FeaturizeMode>(state.range(0));
  const char* mode_name = kModeNames[state.range(0)];
  auto& fx = GetFeaturizeFixture();
  features::kernels::SetSimdEnabled(true);
  features::FeaturizeOptions options;
  options.mode = mode;
  features::ColumnFeaturizer featurizer(&fx.w2v, &fx.space, options);

  const size_t cols = fx.ds.dirty.NumCols();
  std::vector<ml::Matrix> out(cols);
  std::vector<features::FeatureArena> arenas(cols);
  double ms = 0.0;
  for (auto _ : state) {
    ms = TimeMs([&] {
      for (size_t sweep = 0; sweep < kFeaturizeSweeps; ++sweep) {
        for (size_t j = 0; j < cols; ++j) {
          std::span<const Cell> cells(fx.ds.dirty.column(j).values());
          SAGED_CHECK(featurizer
                          .FeaturizeFrozenInto(fx.stats[j], cells, &out[j],
                                               &arenas[j])
                          .ok());
        }
      }
    });
  }

  // Byte-identity across modes, asserted in-process: the scalar cell runs
  // first and keeps its matrices; dict/auto must reproduce them exactly.
  static auto& scalar_out = *new std::vector<ml::Matrix>;
  static double scalar_ms = 0.0;
  const bool is_scalar = mode == features::FeaturizeMode::kScalar;
  if (is_scalar) {
    scalar_out = out;
    scalar_ms = ms;
  } else {
    SAGED_CHECK(scalar_out.size() == cols) << "scalar cell did not run first";
    for (size_t j = 0; j < cols; ++j) {
      SAGED_CHECK(out[j].rows() == scalar_out[j].rows() &&
                  out[j].cols() == scalar_out[j].cols() &&
                  std::memcmp(out[j].data().data(),
                              scalar_out[j].data().data(),
                              out[j].data().size() * sizeof(double)) == 0)
          << "mode=" << mode_name << " diverged from scalar on column " << j;
    }
  }

  const double swept_rows =
      static_cast<double>(kFeaturizeRows) * kFeaturizeSweeps;
  const double rows_per_s = ms > 0.0 ? 1000.0 * swept_rows / ms : 0.0;
  const double speedup = is_scalar || ms <= 0.0 ? 1.0 : scalar_ms / ms;
  state.counters["featurize_ms"] = ms;
  state.counters["rows_per_s"] = rows_per_s;
  state.counters["speedup"] = speedup;
  if (mode == features::FeaturizeMode::kDict) {
    BenchMetrics()["featurize.dict_speedup"] = speedup;
    BenchMetrics()["featurize.dict_rows_per_s"] = rows_per_s;
  }
  state.SetLabel(StrFormat("featurize/%s/rows=%zu/pool=%zu", mode_name,
                           kFeaturizeRows, kFeaturizePool));
  Record(StrFormat("zzzz-featurize/%d", static_cast<int>(state.range(0))),
         StrFormat("featurize-mode %-6s rows=%-5zu pool=%-3zu cols=%zu "
                   "time=%8.1fms rows/s=%9.0f speedup=%5.2fx identical=%s",
                   mode_name, kFeaturizeRows, kFeaturizePool, cols, ms,
                   rows_per_s, speedup, is_scalar ? "ref" : "yes"));
}

BENCHMARK(BM_Fig15FeaturizeMode)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Figure 15: scalability across data fractions",
                 "dataset      tool     fraction rows time f1")
