// Figure 8: detection F1 of the four tuple-selection strategies across
// labeling budgets. Expected shape: random sampling and clustering lead or
// tie on most datasets, active learning shows higher variance, heuristic
// wins on Breast Cancer.

#include "bench/bench_common.h"
#include "common/strings.h"

namespace saged::bench {
namespace {

const std::vector<std::string>& EvalSets() {
  static const auto& v = *new std::vector<std::string>{
      "beers", "breast_cancer", "flights", "hospital", "rayyan"};
  return v;
}

void BM_Fig8(benchmark::State& state) {
  const auto strategy = static_cast<core::LabelingStrategy>(state.range(0));
  const size_t budget = static_cast<size_t>(state.range(1));
  const std::string dataset = EvalSets()[static_cast<size_t>(state.range(2))];

  core::SagedConfig config = BenchConfig(budget);
  config.labeling = strategy;
  std::string key = StrFormat("fig8/%s/%zu",
                              core::LabelingStrategyName(strategy), budget);
  core::Saged& saged = SagedWithHistory(key, config, {"adult", "movies"});
  const auto& ds = GetDataset(dataset);

  pipeline::EvalRow row;
  for (auto _ : state) {
    row = RunSagedCell(saged, ds);
  }
  state.counters["f1"] = row.f1;
  state.SetLabel(dataset + "/" + core::LabelingStrategyName(strategy) +
                 "/budget=" + std::to_string(budget));
  Record(StrFormat("%s/%s/%03zu", dataset.c_str(),
                   core::LabelingStrategyName(strategy), budget),
         StrFormat("%-14s %-16s budget=%-3zu f1=%.3f", dataset.c_str(),
                   core::LabelingStrategyName(strategy), budget, row.f1));
}

BENCHMARK(BM_Fig8)
    ->ArgsProduct({{0, 1, 2, 3}, {5, 10, 20, 40}, {0, 1, 2, 3, 4}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Figure 8: labeling strategy x budget (F1)",
                 "dataset        strategy         budget  f1")
