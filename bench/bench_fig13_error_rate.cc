// Figure 13: robustness to the error rate — F1 and detection time of SAGED
// vs baselines on Hospital and NASA with the injected error rate swept from
// 10% to 50%. Expected shape: SAGED leads at every rate and its time is
// flat in the error rate; ED2 / KATARA / dBoost cost much more.

#include "bench/bench_common.h"
#include "common/strings.h"

namespace saged::bench {
namespace {

const std::vector<std::string>& EvalSets() {
  static const auto& v = *new std::vector<std::string>{"hospital", "nasa"};
  return v;
}

const std::vector<std::string>& Tools() {
  static const auto& v = *new std::vector<std::string>{
      "saged", "ed2", "raha", "katara", "dboost", "mink"};
  return v;
}

void BM_Fig13(benchmark::State& state) {
  const std::string tool = Tools()[static_cast<size_t>(state.range(0))];
  const double rate = static_cast<double>(state.range(1)) / 100.0;
  const std::string dataset = EvalSets()[static_cast<size_t>(state.range(2))];
  const auto& ds = GetDataset(dataset, /*rows=*/0, /*error_rate=*/rate);

  pipeline::EvalRow row;
  for (auto _ : state) {
    if (tool == "saged") {
      row = RunSagedCell(DefaultSaged(20), ds);
    } else {
      row = RunBaselineCell(tool, ds, 20);
    }
  }
  state.counters["f1"] = row.f1;
  state.counters["detect_s"] = row.seconds;
  state.SetLabel(dataset + "/" + tool + "/rate=" + std::to_string(rate));
  Record(StrFormat("%s/%s/%03ld", dataset.c_str(), tool.c_str(),
                   state.range(1)),
         StrFormat("%-10s %-8s rate=%.2f  f1=%.3f  time=%.2fs",
                   dataset.c_str(), tool.c_str(), rate, row.f1, row.seconds));
}

BENCHMARK(BM_Fig13)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {10, 20, 30, 40, 50}, {0, 1}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Figure 13: error-rate robustness (F1 and time)",
                 "dataset    tool     rate  f1  time")
