// Ablations beyond the paper's figures (DESIGN.md Section 5):
//   (a) feature families — drop metadata / Word2Vec / TF-IDF and measure
//       the F1 delta (justifies the combined featurizer);
//   (b) base-model family — forest vs boosting vs logistic vs MLP;
//   (c) cosine matching threshold and B_rel cap.

#include "bench/bench_common.h"
#include "common/strings.h"

namespace saged::bench {
namespace {

const char* kEvalDataset = "beers";

// --- (a) feature families ---------------------------------------------------

void BM_AblationFeatures(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  static const char* kNames[] = {"all", "no_metadata", "no_word2vec",
                                 "no_tfidf", "metadata_only"};
  core::SagedConfig config = BenchConfig(20);
  switch (variant) {
    case 1:
      config.use_metadata_features = false;
      break;
    case 2:
      config.use_w2v_features = false;
      break;
    case 3:
      config.use_tfidf_features = false;
      break;
    case 4:
      config.use_w2v_features = false;
      config.use_tfidf_features = false;
      break;
    default:
      break;
  }
  core::Saged& saged = SagedWithHistory(
      StrFormat("ablation_feat/%d", variant), config, {"adult", "movies"});
  const auto& ds = GetDataset(kEvalDataset);

  pipeline::EvalRow row;
  for (auto _ : state) {
    row = RunSagedCell(saged, ds);
  }
  state.counters["f1"] = row.f1;
  state.SetLabel(kNames[variant]);
  Record(StrFormat("a_features/%d", variant),
         StrFormat("features: %-14s f1=%.3f  time=%.2fs", kNames[variant],
                   row.f1, row.seconds));
}

BENCHMARK(BM_AblationFeatures)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

// --- (b) base-model family -----------------------------------------------------

void BM_AblationBaseModel(benchmark::State& state) {
  const auto type = static_cast<core::ModelType>(state.range(0));
  core::SagedConfig config = BenchConfig(20);
  config.base_model = type;
  core::Saged& saged = SagedWithHistory(
      StrFormat("ablation_model/%ld", state.range(0)), config,
      {"adult", "movies"});
  const auto& ds = GetDataset(kEvalDataset);

  pipeline::EvalRow row;
  for (auto _ : state) {
    row = RunSagedCell(saged, ds);
  }
  state.counters["f1"] = row.f1;
  state.SetLabel(core::ModelTypeName(type));
  Record(StrFormat("b_model/%ld", state.range(0)),
         StrFormat("base model: %-20s f1=%.3f  time=%.2fs",
                   core::ModelTypeName(type), row.f1, row.seconds));
}

BENCHMARK(BM_AblationBaseModel)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

// --- (c) cosine matching threshold / model cap ---------------------------------

void BM_AblationMatching(benchmark::State& state) {
  const double threshold = static_cast<double>(state.range(0)) / 100.0;
  const size_t cap = static_cast<size_t>(state.range(1));
  core::SagedConfig config = BenchConfig(20);
  config.similarity = core::SimilarityMethod::kCosine;
  config.cosine_threshold = threshold;
  config.max_models_per_column = cap;
  core::Saged& saged = SagedWithHistory(
      StrFormat("ablation_match/%ld/%zu", state.range(0), cap), config,
      {"adult", "movies"});
  const auto& ds = GetDataset(kEvalDataset);

  pipeline::EvalRow row;
  for (auto _ : state) {
    row = RunSagedCell(saged, ds);
  }
  state.counters["f1"] = row.f1;
  state.SetLabel(StrFormat("thr=%.2f/cap=%zu", threshold, cap));
  Record(StrFormat("c_match/%03ld/%02zu", state.range(0), cap),
         StrFormat("cosine threshold=%.2f cap=%-2zu f1=%.3f", threshold, cap,
                   row.f1));
}

BENCHMARK(BM_AblationMatching)
    ->ArgsProduct({{50, 70, 85, 95}, {2, 4, 8}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Ablations: features, base models, matching",
                 "variant  f1 / time")
