// Figure 12: detection time of SAGED vs Raha / ED2 as the labeling budget
// grows. Expected shape: SAGED and Raha roughly flat and cheap; ED2's time
// climbs linearly with the budget (full-table certainty scans per round).

#include "bench/bench_common.h"
#include "common/strings.h"

namespace saged::bench {
namespace {

const std::vector<std::string>& EvalSets() {
  static const auto& v = *new std::vector<std::string>{
      "beers", "bikes", "flights", "smart_factory"};
  return v;
}

const std::vector<std::string>& Tools() {
  static const auto& v = *new std::vector<std::string>{"saged", "raha", "ed2"};
  return v;
}

void BM_Fig12(benchmark::State& state) {
  const std::string tool = Tools()[static_cast<size_t>(state.range(0))];
  const size_t budget = static_cast<size_t>(state.range(1));
  const std::string dataset = EvalSets()[static_cast<size_t>(state.range(2))];
  const auto& ds = GetDataset(dataset);

  pipeline::EvalRow row;
  for (auto _ : state) {
    if (tool == "saged") {
      row = RunSagedCell(DefaultSaged(budget), ds);
    } else {
      row = RunBaselineCell(tool, ds, budget);
    }
  }
  state.counters["detect_s"] = row.seconds;
  state.SetLabel(dataset + "/" + tool + "/budget=" + std::to_string(budget));
  Record(StrFormat("%s/%s/%03zu", dataset.c_str(), tool.c_str(), budget),
         StrFormat("%-14s %-6s budget=%-3zu time=%.2fs", dataset.c_str(),
                   tool.c_str(), budget, row.seconds));
}

BENCHMARK(BM_Fig12)
    ->ArgsProduct({{0, 1, 2}, {5, 10, 20, 40, 60}, {0, 1, 2, 3}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Figure 12: labeling budget vs detection time",
                 "dataset        tool   budget  time")
