// Knowledge-base scale: exact cosine scan vs the kb/ signature index as the
// historical inventory grows from 100 to 10,000 corpus datasets (one entry
// per column, ~3.5x that in base-model entries). The quantities that matter:
//
//   * match latency — the indexed matcher must beat the exact scan by >=10x
//     at the 10k scale (the tentpole's reason to exist);
//   * recall@max_models — of the exact matcher's selection, the fraction
//     the index reproduces at AutoProbes. check-perf gates this at >= 0.95
//     through saged_report --floor metrics/kb.recall_at_max=0.95.
//
// Entries carry real signatures (features::ColumnSignature over
// datagen::MakeCorpusDataset columns) but no trained models: matching reads
// signatures only, and skipping model training is what makes a 10k-dataset
// sweep a bench instead of an overnight job.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/strings.h"
#include "core/knowledge_base.h"
#include "core/matcher.h"
#include "datagen/datasets.h"
#include "features/signature.h"
#include "kb/signature_index.h"

namespace saged::bench {
namespace {

// Query datasets start far above every swept scale so queries are always
// held out from the inventory.
constexpr size_t kQueryBase = 900'000;
constexpr size_t kQueryDatasets = 40;
// Timed passes over the query set per cell, so the exact scan accumulates
// enough work to time reliably even at the 100-dataset scale.
constexpr size_t kTimedPasses = 3;

// Grows one shared knowledge base of corpus column signatures to
// `n_datasets` (cells reuse the smaller prefix: entry order is generation
// order, so a prefix of 10k *is* the 1k inventory).
const core::KnowledgeBase& CorpusKb(size_t n_datasets) {
  static auto& kb = *new core::KnowledgeBase;
  static size_t generated = 0;
  for (; generated < n_datasets; ++generated) {
    auto ds = datagen::MakeCorpusDataset(generated, {});
    SAGED_CHECK(ds.ok()) << ds.status().ToString();
    for (const auto& column : ds->dirty.columns()) {
      core::BaseModelEntry entry;
      entry.dataset = ds->dirty.name();
      entry.column = column.name();
      entry.signature = features::ColumnSignature(column);
      kb.AddEntry(std::move(entry));
    }
  }
  SAGED_CHECK(kb.size() >= n_datasets);
  return kb;
}

// Held-out query signatures, generated once.
const std::vector<std::vector<double>>& QuerySignatures() {
  static auto& queries = *new std::vector<std::vector<double>>;
  if (!queries.empty()) return queries;
  for (size_t i = 0; i < kQueryDatasets; ++i) {
    auto ds = datagen::MakeCorpusDataset(kQueryBase + i, {});
    SAGED_CHECK(ds.ok()) << ds.status().ToString();
    RecordDatasetDigest(ds->dirty.name(), *ds);
    for (const auto& column : ds->dirty.columns()) {
      queries.push_back(features::ColumnSignature(column));
    }
  }
  return queries;
}

// Fraction of `exact` reproduced in `approx`, 1.0 when exact is empty.
double Recall(const std::vector<size_t>& exact,
              const std::vector<size_t>& approx) {
  if (exact.empty()) return 1.0;
  size_t hit = 0;
  for (size_t e : exact) {
    if (std::find(approx.begin(), approx.end(), e) != approx.end()) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

void RecordMinMetric(const std::string& name, double value) {
  auto& metrics = BenchMetrics();
  auto it = metrics.find(name);
  metrics[name] = it == metrics.end() ? value : std::min(it->second, value);
}

void BM_KbScale(benchmark::State& state) {
  const size_t n_datasets = static_cast<size_t>(state.range(0));
  const core::KnowledgeBase& full = CorpusKb(n_datasets);
  // Matchers see only this scale's prefix of the shared inventory.
  core::KnowledgeBase inventory;
  size_t n_entries = 0;
  {
    size_t datasets_seen = 0;
    std::string last;
    for (const auto& entry : full.entries()) {
      if (entry.dataset != last) {
        last = entry.dataset;
        if (++datasets_seen > n_datasets) break;
      }
      core::BaseModelEntry copy;
      copy.dataset = entry.dataset;
      copy.column = entry.column;
      copy.signature = entry.signature;
      inventory.AddEntry(std::move(copy));
      ++n_entries;
    }
  }

  const core::SagedConfig config = BenchConfig();
  double build_ms = 0.0;
  Result<kb::SignatureIndex> index = Status::OK();
  build_ms = TimeMs([&] {
    index = kb::SignatureIndex::Build(inventory, config.index_buckets,
                                      config.seed);
  });
  SAGED_CHECK(index.ok()) << index.status().ToString();
  const size_t probes = config.index_probes > 0
                            ? config.index_probes
                            : kb::SignatureIndex::AutoProbes(index->n_buckets());

  core::CosineMatcher exact(&inventory, config.cosine_threshold,
                            config.max_models_per_column);
  kb::IndexedMatcher fast(&inventory, &*index, config.cosine_threshold,
                          config.max_models_per_column, probes);
  const auto& queries = QuerySignatures();

  double recall_sum = 0.0;
  for (const auto& q : queries) {
    recall_sum += Recall(exact.Match(q), fast.Match(q));
  }
  const double recall = recall_sum / static_cast<double>(queries.size());

  double exact_ms = 0.0;
  double indexed_ms = 0.0;
  for (auto _ : state) {
    exact_ms = TimeMs([&] {
      for (size_t pass = 0; pass < kTimedPasses; ++pass) {
        for (const auto& q : queries) benchmark::DoNotOptimize(exact.Match(q));
      }
    });
    indexed_ms = TimeMs([&] {
      for (size_t pass = 0; pass < kTimedPasses; ++pass) {
        for (const auto& q : queries) benchmark::DoNotOptimize(fast.Match(q));
      }
    });
  }
  const double speedup = indexed_ms > 0.0 ? exact_ms / indexed_ms : 0.0;

  state.counters["entries"] = static_cast<double>(n_entries);
  state.counters["speedup"] = speedup;
  state.counters["recall"] = recall;
  state.SetLabel(StrFormat("datasets=%zu entries=%zu probes=%zu/%zu",
                           n_datasets, n_entries, probes,
                           index->n_buckets()));

  const std::string scale = StrFormat("n%zu", n_datasets);
  auto& metrics = BenchMetrics();
  metrics["kb.match_exact_ms." + scale] = exact_ms;
  metrics["kb.match_indexed_ms." + scale] = indexed_ms;
  metrics["kb.index_build_ms." + scale] = build_ms;
  metrics["kb.speedup." + scale] = speedup;
  // Cells run smallest to largest, so the unscoped speedup — the one the
  // acceptance bar reads — is the largest swept scale's.
  metrics["kb.speedup"] = speedup;
  // The floor gate reads the worst recall across every swept scale.
  RecordMinMetric("kb.recall_at_max", recall);

  Record(StrFormat("%08zu", n_datasets),
         StrFormat("%6zu datasets %6zu entries  buckets=%-4zu probes=%-3zu  "
                   "exact=%8.2fms indexed=%8.2fms  speedup=%5.1fx  "
                   "recall@%zu=%.3f",
                   n_datasets, n_entries, index->n_buckets(), probes,
                   exact_ms, indexed_ms, speedup,
                   config.max_models_per_column, recall));
}

BENCHMARK(BM_KbScale)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Knowledge-base scale: exact scan vs signature index",
                 "datasets entries buckets/probes exact indexed speedup "
                 "recall")
