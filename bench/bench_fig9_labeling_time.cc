// Figure 9: detection *time* of the four tuple-selection strategies across
// labeling budgets. Expected shape: random and heuristic sampling stay flat
// and cheap; active learning and clustering grow with the budget.

#include "bench/bench_common.h"
#include "common/strings.h"

namespace saged::bench {
namespace {

const std::vector<std::string>& EvalSets() {
  static const auto& v =
      *new std::vector<std::string>{"beers", "flights", "hospital"};
  return v;
}

void BM_Fig9(benchmark::State& state) {
  const auto strategy = static_cast<core::LabelingStrategy>(state.range(0));
  const size_t budget = static_cast<size_t>(state.range(1));
  const std::string dataset = EvalSets()[static_cast<size_t>(state.range(2))];

  core::SagedConfig config = BenchConfig(budget);
  config.labeling = strategy;
  std::string key = StrFormat("fig9/%s/%zu",
                              core::LabelingStrategyName(strategy), budget);
  core::Saged& saged = SagedWithHistory(key, config, {"adult", "movies"});
  const auto& ds = GetDataset(dataset);

  pipeline::EvalRow row;
  for (auto _ : state) {
    row = RunSagedCell(saged, ds);
  }
  state.counters["detect_s"] = row.seconds;
  state.counters["f1"] = row.f1;
  state.SetLabel(dataset + "/" + core::LabelingStrategyName(strategy) +
                 "/budget=" + std::to_string(budget));
  Record(StrFormat("%s/%s/%03zu", dataset.c_str(),
                   core::LabelingStrategyName(strategy), budget),
         StrFormat("%-14s %-16s budget=%-3zu time=%.2fs", dataset.c_str(),
                   core::LabelingStrategyName(strategy), budget, row.seconds));
}

BENCHMARK(BM_Fig9)
    ->ArgsProduct({{0, 1, 2, 3}, {5, 10, 20, 40}, {0, 1, 2}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Figure 9: labeling strategy x budget (detection time)",
                 "dataset        strategy         budget  time")
