// Figure 7: F1 of SAGED under the two similarity measures (cosine vs
// clustering) as the historical inventory grows from 1 to 7 datasets.
// Expected shape: both measures comparable; more history helps, steeply for
// Flights and Soil Moisture, gently for Beers/Movies/Smart Factory.

#include "bench/bench_common.h"
#include "common/strings.h"

namespace saged::bench {
namespace {

const std::vector<std::string>& EvalSets() {
  static const auto& v = *new std::vector<std::string>{
      "beers", "flights", "movies", "smart_factory", "soil_moisture"};
  return v;
}

// Historical pool, in ingestion order (never contains the eval target: the
// pool below is disjoint from EvalSets()).
const std::vector<std::string>& HistPool() {
  static const auto& v = *new std::vector<std::string>{
      "adult", "hospital", "rayyan", "bikes", "tax", "restaurants", "nasa"};
  return v;
}

core::Saged& SagedFor(core::SimilarityMethod method, size_t n_hist) {
  core::SagedConfig config = BenchConfig(20);
  config.similarity = method;
  std::string key = StrFormat("fig7/%s/%zu",
                              core::SimilarityMethodName(method), n_hist);
  std::vector<std::string> history(HistPool().begin(),
                                   HistPool().begin() + n_hist);
  return SagedWithHistory(key, config, history);
}

void BM_Fig7(benchmark::State& state) {
  const auto method = static_cast<core::SimilarityMethod>(state.range(0));
  const size_t n_hist = static_cast<size_t>(state.range(1));
  const std::string dataset = EvalSets()[static_cast<size_t>(state.range(2))];
  core::Saged& saged = SagedFor(method, n_hist);
  const auto& ds = GetDataset(dataset);

  pipeline::EvalRow row;
  for (auto _ : state) {
    row = RunSagedCell(saged, ds);
  }
  state.counters["f1"] = row.f1;
  state.counters["detect_s"] = row.seconds;
  state.SetLabel(dataset + "/" + core::SimilarityMethodName(method) +
                 "/hist=" + std::to_string(n_hist));
  Record(StrFormat("%s/%s/%zu", dataset.c_str(),
                   core::SimilarityMethodName(method), n_hist),
         StrFormat("%-14s %-10s hist=%zu  f1=%.3f  time=%.2fs",
                   dataset.c_str(), core::SimilarityMethodName(method),
                   n_hist, row.f1, row.seconds));
}

BENCHMARK(BM_Fig7)
    ->ArgsProduct({{0, 1}, {1, 2, 3, 4, 5, 6, 7}, {0, 1, 2, 3, 4}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Figure 7: similarity measure x #historical datasets",
                 "dataset        method     history  f1  time")
