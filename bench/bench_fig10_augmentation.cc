// Figure 10: label augmentation methods (plus no-augmentation baseline)
// across labeling budgets. Expected shape: no substantial differences
// between methods; no-augmentation competitive; KNN-Shapley often weakest.

#include "bench/bench_common.h"
#include "common/strings.h"

namespace saged::bench {
namespace {

const std::vector<std::string>& EvalSets() {
  static const auto& v =
      *new std::vector<std::string>{"beers", "rayyan", "smart_factory"};
  return v;
}

void BM_Fig10(benchmark::State& state) {
  const auto method = static_cast<core::AugmentationMethod>(state.range(0));
  const size_t budget = static_cast<size_t>(state.range(1));
  const std::string dataset = EvalSets()[static_cast<size_t>(state.range(2))];

  core::SagedConfig config = BenchConfig(budget);
  config.augmentation = method;
  config.augmentation_fraction = 0.2;  // paper: 20% of predictions
  std::string key = StrFormat("fig10/%s/%zu",
                              core::AugmentationMethodName(method), budget);
  core::Saged& saged = SagedWithHistory(key, config, {"adult", "movies"});
  const auto& ds = GetDataset(dataset);

  pipeline::EvalRow row;
  for (auto _ : state) {
    row = RunSagedCell(saged, ds);
  }
  state.counters["f1"] = row.f1;
  state.SetLabel(dataset + "/" + core::AugmentationMethodName(method) +
                 "/budget=" + std::to_string(budget));
  Record(StrFormat("%s/%s/%03zu", dataset.c_str(),
                   core::AugmentationMethodName(method), budget),
         StrFormat("%-14s %-20s budget=%-3zu f1=%.3f", dataset.c_str(),
                   core::AugmentationMethodName(method), budget, row.f1));
}

BENCHMARK(BM_Fig10)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {10, 20, 40}, {0, 1, 2}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Figure 10: label augmentation methods x budget (F1)",
                 "dataset        method               budget  f1")
