// Serving throughput: an in-process saged_serve server (knowledge base
// loaded once) hammered by N concurrent clients over the real wire
// protocol on a local socket. Reports requests/s per client count and
// feeds serve.request_ms latency percentiles into the run ledger, so
// check-perf gates serving-path regressions like any other number.
//
// Cells run once (wall-clock is the measured quantity). The admission
// queue and the shared executor are exercised exactly as in production:
// clients block on their replies while the scheduler round-robins the
// requests through the engine.

#include <unistd.h>

#include "bench/bench_common.h"
#include "common/executor.h"
#include "common/strings.h"
#include "data/csv.h"
#include "data/mask_io.h"
#include "serve/client.h"
#include "serve/server.h"

namespace saged::bench {
namespace {

constexpr size_t kRequestsPerClient = 2;

/// One server shared by every cell — the point of the daemon is that the
/// knowledge base loads once no matter how many clients arrive.
struct ServeFixture {
  std::string socket_path;
  std::string data_csv;
  std::string mask_csv;
  std::unique_ptr<serve::SagedServer> server;

  ServeFixture() {
    const auto& ds = GetDataset("beers");
    data_csv = OutPath("bench_serve_dirty.csv");
    mask_csv = OutPath("bench_serve_mask.csv");
    auto w1 = WriteCsv(ds.dirty, data_csv);
    SAGED_CHECK(w1.ok()) << w1.ToString();
    auto w2 = WriteCsv(MaskToTable(ds.mask, ds.dirty.ColumnNames()), mask_csv);
    SAGED_CHECK(w2.ok()) << w2.ToString();

    socket_path =
        "/tmp/saged_bench_serve." + std::to_string(::getpid()) + ".sock";
    core::Saged& engine = DefaultSaged();
    serve::ServerOptions options;
    options.socket_path = socket_path;
    server = std::make_unique<serve::SagedServer>(&engine, options);
    auto started = server->Start();
    SAGED_CHECK(started.ok()) << started.ToString();

    ManifestHistograms().push_back("serve.request_ms");
    AtBenchExit().push_back([this] {
      server->Stop();
      std::remove(data_csv.c_str());
      std::remove(mask_csv.c_str());
    });
  }
};

ServeFixture& Fixture() {
  static auto& fixture = *new ServeFixture;
  return fixture;
}

/// Connects, runs kRequestsPerClient round-trips, checks every reply.
void RunClient(const ServeFixture& fixture, size_t client_index) {
  serve::SagedClient client;
  auto connected = client.Connect(fixture.socket_path);
  SAGED_CHECK(connected.ok()) << connected.ToString();
  for (size_t i = 0; i < kRequestsPerClient; ++i) {
    serve::DetectRequestMsg msg;
    msg.request_id = client_index * 1000 + i;
    msg.data_path = fixture.data_csv;
    msg.oracle_mask_path = fixture.mask_csv;
    auto reply = client.Detect(msg);
    SAGED_CHECK(reply.ok()) << reply.status().ToString();
    SAGED_CHECK(reply->ok()) << reply->error_message;
    SAGED_CHECK_EQ(reply->request_id, msg.request_id);
  }
}

void BM_Serve(benchmark::State& state) {
  ServeFixture& fixture = Fixture();
  const size_t clients = static_cast<size_t>(state.range(0));
  double ms = 0.0;
  for (auto _ : state) {
    // A dedicated pool for the client side: client tasks block in recv()
    // until the server's executor finishes the detection, so they must not
    // occupy the shared pool the server schedules onto.
    Executor client_pool(clients);
    ms = TimeMs([&] {
      std::vector<std::future<void>> done;
      done.reserve(clients);
      for (size_t c = 0; c < clients; ++c) {
        done.push_back(client_pool.Submit(
            // saged-lint: allow(executor-capture-lifetime): the futures are joined in the f.get() loop below, before fixture leaves scope
            [&fixture, c] { RunClient(fixture, c); }));
      }
      for (auto& f : done) f.get();
    });
  }
  const double requests = static_cast<double>(clients * kRequestsPerClient);
  const double rps = requests / (ms / 1000.0);
  state.counters["rps"] = rps;
  auto stats =
      telemetry::TelemetryRegistry::Get().HistogramSnapshot("serve.request_ms");
  BenchMetrics()[StrFormat("serve.rps.clients%zu", clients)] = rps;
  Record(StrFormat("%02zu", clients),
         StrFormat("clients=%2zu  requests=%3.0f  wall=%8.1fms  rps=%6.2f  "
                   "request_ms p50=%.1f p99=%.1f (cumulative)",
                   clients, requests, ms, rps, stats.p50, stats.p99));
}

BENCHMARK(BM_Serve)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Serving throughput: concurrent clients vs one warm server",
                 "clients        throughput and latency")
