// Figure 14: robustness to the outlier degree — F1 and detection time on
// Hospital and NASA with outlier-only corruption whose magnitude is swept.
// Expected shape: SAGED stays on top at every degree; the dedicated outlier
// detectors (SD, IQR, IF) improve as outliers get more extreme but still
// trail the ML-based detectors; SAGED's time beats dBoost/KATARA.

#include "bench/bench_common.h"
#include "common/contracts.h"
#include "common/strings.h"
#include "datagen/error_injector.h"

namespace saged::bench {
namespace {

const std::vector<std::string>& EvalSets() {
  static const auto& v = *new std::vector<std::string>{"hospital", "nasa"};
  return v;
}

const std::vector<std::string>& Tools() {
  static const auto& v = *new std::vector<std::string>{
      "saged", "ed2", "raha", "sd", "iqr", "if", "dboost"};
  return v;
}

/// Outlier-only variant of a dataset at the given degree.
const datagen::Dataset& OutlierDataset(const std::string& name,
                                       double degree) {
  static auto& cache = *new std::map<std::string, datagen::Dataset>;
  std::string key = name + "/" + std::to_string(degree);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const auto& base = GetDataset(name);
  datagen::InjectionSpec spec;
  spec.error_rate = 0.15;
  spec.types = {datagen::ErrorType::kOutlier};
  spec.outlier_degree = degree;
  datagen::ErrorInjector injector(spec, 31);
  auto injected = injector.Inject(base.clean, &base.rules);
  SAGED_CHECK(injected.ok());
  datagen::Dataset ds;
  ds.spec = base.spec;
  ds.clean = base.clean;
  ds.dirty = std::move(injected->dirty);
  ds.mask = std::move(injected->mask);
  ds.rules = base.rules;
  ds.domains = base.domains;
  return cache.emplace(key, std::move(ds)).first->second;
}

void BM_Fig14(benchmark::State& state) {
  const std::string tool = Tools()[static_cast<size_t>(state.range(0))];
  const double degree = static_cast<double>(state.range(1));
  const std::string dataset = EvalSets()[static_cast<size_t>(state.range(2))];
  const auto& ds = OutlierDataset(dataset, degree);

  pipeline::EvalRow row;
  for (auto _ : state) {
    if (tool == "saged") {
      row = RunSagedCell(DefaultSaged(20), ds);
    } else {
      row = RunBaselineCell(tool, ds, 20);
    }
  }
  state.counters["f1"] = row.f1;
  state.counters["detect_s"] = row.seconds;
  state.SetLabel(dataset + "/" + tool + "/degree=" + std::to_string(degree));
  Record(StrFormat("%s/%s/%03ld", dataset.c_str(), tool.c_str(),
                   state.range(1)),
         StrFormat("%-10s %-8s degree=%-3.0f f1=%.3f  time=%.2fs",
                   dataset.c_str(), tool.c_str(), degree, row.f1,
                   row.seconds));
}

BENCHMARK(BM_Fig14)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {2, 4, 6, 8, 10}, {0, 1}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Figure 14: outlier-degree robustness (F1 and time)",
                 "dataset    tool     degree  f1  time")
