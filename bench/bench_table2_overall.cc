// Table 2: the headline comparison — SAGED and all eleven baselines on
// eight evaluation datasets at a fixed 20-label budget, reporting
// precision / recall / F1 / detection time. Expected shape: SAGED first or
// tied on F1 nearly everywhere with the lowest time among ML-based tools;
// ED2 competitive on F1 but far slower; pure outlier detectors (SD/IF/IQR)
// detect nothing on text-heavy datasets.

#include "bench/bench_common.h"
#include "baselines/registry.h"
#include "common/strings.h"

namespace saged::bench {
namespace {

const std::vector<std::string>& EvalSets() {
  static const auto& v = *new std::vector<std::string>{
      "beers",  "bikes",        "hospital", "rayyan",
      "flights", "breast_cancer", "nasa",    "smart_factory"};
  return v;
}

const std::vector<std::string>& Tools() {
  static const auto& v = *new std::vector<std::string>{
      "saged", "raha", "ed2",   "holoclean", "nadeef", "katara",
      "dboost", "mink", "fahes", "sd",        "if",     "iqr"};
  return v;
}

void BM_Table2(benchmark::State& state) {
  const std::string tool = Tools()[static_cast<size_t>(state.range(0))];
  const std::string dataset = EvalSets()[static_cast<size_t>(state.range(1))];
  const auto& ds = GetDataset(dataset);
  constexpr size_t kBudget = 20;  // the paper's fixed budget for Table 2

  pipeline::EvalRow row;
  for (auto _ : state) {
    if (tool == "saged") {
      row = RunSagedCell(DefaultSaged(kBudget), ds);
    } else {
      row = RunBaselineCell(tool, ds, kBudget);
    }
  }
  state.counters["precision"] = row.precision;
  state.counters["recall"] = row.recall;
  state.counters["f1"] = row.f1;
  state.counters["detect_s"] = row.seconds;
  state.SetLabel(dataset + "/" + tool);
  Record(StrFormat("%s/%02zu_%s", dataset.c_str(),
                   static_cast<size_t>(state.range(0)), tool.c_str()),
         StrFormat("%-14s %-10s P=%.3f R=%.3f F1=%.3f time=%.2fs",
                   dataset.c_str(), tool.c_str(), row.precision, row.recall,
                   row.f1, row.seconds));
}

BENCHMARK(BM_Table2)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
                   {0, 1, 2, 3, 4, 5, 6, 7}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Table 2: detection accuracy and runtime, all tools",
                 "dataset        tool       P / R / F1 / time")
