// Substrate microbenchmarks: throughput of the building blocks that
// dominate SAGED's detection time (featurization, base-model training and
// inference, Word2Vec, clustering, CSV parsing). Unlike the figure/table
// benches these use real repeated iterations.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/detector.h"
#include "data/csv.h"
#include "datagen/datasets.h"
#include "features/char_space.h"
#include "features/dictionary.h"
#include "features/featurizer.h"
#include "features/kernels.h"
#include "ml/agglomerative.h"
#include "ml/random_forest.h"
#include "text/tokenizer.h"
#include "text/word2vec.h"

namespace saged::bench {
namespace {

const datagen::Dataset& Beers() {
  static auto& ds = *new datagen::Dataset([] {
    datagen::MakeOptions opts;
    opts.rows = 2000;
    auto r = datagen::MakeDataset("beers", opts);
    return std::move(r).value();
  }());
  return ds;
}

void BM_FeaturizeColumn(benchmark::State& state) {
  const auto& ds = Beers();
  text::Word2Vec w2v;
  features::CharSpace space(64);
  const Column& col = ds.dirty.column(static_cast<size_t>(state.range(0)));
  features::ColumnFeaturizer::RegisterChars(col, &space);
  features::ColumnFeaturizer featurizer(&w2v, &space);
  for (auto _ : state) {
    auto m = featurizer.Featurize(col);
    benchmark::DoNotOptimize(m->rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(col.size()));
}
BENCHMARK(BM_FeaturizeColumn)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

/// High-repetition column for the dictionary-path cells: pooled corpus
/// values (the profile pinned by tests/datagen_golden_test.cc), so the
/// distinct ratio is pool/rows and the dictionary gather dominates.
const Column& PooledColumn() {
  static auto& col = *new Column([] {
    datagen::CorpusOptions opts;
    opts.rows = 4096;
    opts.value_pool = 16;
    auto ds = datagen::MakeCorpusDataset(0, opts);
    SAGED_CHECK(ds.ok()) << ds.status().ToString();
    return ds->dirty.column(0);
  }());
  return col;
}

/// Featurization-mode sweep on the pooled column: range(0) selects the
/// FeaturizeMode (0 scalar, 1 dict, 2 auto). Same work per iteration, so
/// the items/s ratio between the cells IS the dictionary speedup.
void BM_FeaturizeMode(benchmark::State& state) {
  const Column& col = PooledColumn();
  text::Word2Vec w2v({.dim = 6, .epochs = 2}, 3);
  std::vector<std::vector<std::string>> docs;
  for (const auto& cell : col.values()) docs.push_back(text::WordTokens(cell));
  SAGED_CHECK(w2v.Train(docs).ok());
  features::CharSpace space(64);
  features::ColumnFeaturizer::RegisterChars(col, &space);
  features::FeaturizeOptions options;
  options.mode = static_cast<features::FeaturizeMode>(state.range(0));
  features::ColumnFeaturizer featurizer(&w2v, &space, options);
  features::kernels::SetSimdEnabled(true);
  for (auto _ : state) {
    auto m = featurizer.Featurize(col);
    benchmark::DoNotOptimize(m->rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(col.size()));
}
BENCHMARK(BM_FeaturizeMode)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

/// Dictionary encode alone (distinct-value interning + code vector) over
/// the pooled column — the fixed cost the gather path pays per block.
void BM_DictEncode(benchmark::State& state) {
  const Column& col = PooledColumn();
  features::ColumnDictionary dict;
  for (auto _ : state) {
    dict.Encode(std::span<const Cell>(col.values()));
    benchmark::DoNotOptimize(dict.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(col.size()));
}
BENCHMARK(BM_DictEncode)->Unit(benchmark::kMicrosecond);

/// Char-class counting kernel, dispatched vs scalar reference (range(0):
/// 0 scalar, 1 SIMD when the build has it). Bytes/s is the headline.
void BM_KernelCharClasses(benchmark::State& state) {
  const Column& col = PooledColumn();
  features::kernels::SetSimdEnabled(state.range(0) == 1);
  uint64_t total = 0;
  int64_t bytes = 0;
  for (auto _ : state) {
    for (const auto& cell : col.values()) {
      auto counts = features::kernels::CountCharClasses(cell);
      total += counts.alpha + counts.digit + counts.punct;
    }
  }
  for (const auto& cell : col.values()) {
    bytes += static_cast<int64_t>(cell.size());
  }
  benchmark::DoNotOptimize(total);
  features::kernels::SetSimdEnabled(true);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
  state.SetLabel(state.range(0) == 1 &&
                         features::kernels::SimdAvailable()
                     ? "simd"
                     : "scalar");
}
BENCHMARK(BM_KernelCharClasses)->Arg(0)->Arg(1);

/// Value-hash kernel (dictionary probe distribution), dispatched vs scalar.
void BM_KernelHash(benchmark::State& state) {
  const Column& col = PooledColumn();
  features::kernels::SetSimdEnabled(state.range(0) == 1);
  uint64_t total = 0;
  int64_t bytes = 0;
  for (auto _ : state) {
    for (const auto& cell : col.values()) {
      total ^= features::kernels::HashValue(cell);
    }
  }
  for (const auto& cell : col.values()) {
    bytes += static_cast<int64_t>(cell.size());
  }
  benchmark::DoNotOptimize(total);
  features::kernels::SetSimdEnabled(true);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}
BENCHMARK(BM_KernelHash)->Arg(0)->Arg(1);

void BM_ForestFit(benchmark::State& state) {
  Rng rng(3);
  ml::Matrix x;
  std::vector<int> y;
  const size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(16);
    for (auto& v : row) v = rng.Normal();
    x.AppendRow(row);
    y.push_back(rng.Bernoulli(0.2) ? 1 : 0);
  }
  for (auto _ : state) {
    ml::RandomForestClassifier forest({}, 7);
    benchmark::DoNotOptimize(forest.Fit(x, y).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ForestFit)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  Rng rng(5);
  ml::Matrix x;
  std::vector<int> y;
  for (size_t i = 0; i < 2000; ++i) {
    std::vector<double> row(16);
    for (auto& v : row) v = rng.Normal();
    x.AppendRow(row);
    y.push_back(rng.Bernoulli(0.2) ? 1 : 0);
  }
  ml::RandomForestClassifier forest({}, 7);
  (void)forest.Fit(x, y);
  for (auto _ : state) {
    auto proba = forest.PredictProba(x);
    benchmark::DoNotOptimize(proba.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_ForestPredict)->Unit(benchmark::kMillisecond);

void BM_Word2VecTrain(benchmark::State& state) {
  const auto& ds = Beers();
  std::vector<std::vector<std::string>> docs;
  for (size_t r = 0; r < ds.dirty.NumRows(); ++r) {
    docs.push_back(text::TupleTokens(ds.dirty.Row(r)));
  }
  for (auto _ : state) {
    text::Word2Vec w2v({.dim = 8, .epochs = 2}, 3);
    benchmark::DoNotOptimize(w2v.Train(docs).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(docs.size()));
}
BENCHMARK(BM_Word2VecTrain)->Unit(benchmark::kMillisecond);

void BM_Agglomerative(benchmark::State& state) {
  Rng rng(9);
  ml::Matrix x;
  const size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row = {rng.Normal(), rng.Normal(), rng.Normal()};
    x.AppendRow(row);
  }
  for (auto _ : state) {
    ml::Agglomerative agg;
    benchmark::DoNotOptimize(agg.Fit(x).ok());
  }
}
BENCHMARK(BM_Agglomerative)->Arg(100)->Arg(300)->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_CsvParse(benchmark::State& state) {
  const auto& ds = Beers();
  std::string text = FormatCsv(ds.dirty);
  for (auto _ : state) {
    auto t = ParseCsv(text);
    benchmark::DoNotOptimize(t->NumRows());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_CsvParse)->Unit(benchmark::kMillisecond);

// Telemetry overhead: the cost of an instrumented call site in each mode.
// The disabled variants are the "instrumentation costs ~nothing" claim —
// compare against BM_TelemetryBaselineLoop (the same loop with no
// instrumentation at all; the target is < 1% delta on real stage bodies,
// which run microseconds to milliseconds per span).

void BM_TelemetryBaselineLoop(benchmark::State& state) {
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(++x);
  }
}
BENCHMARK(BM_TelemetryBaselineLoop);

void BM_TelemetrySpanDisabled(benchmark::State& state) {
  telemetry::SetEnabled(false);
  uint64_t x = 0;
  for (auto _ : state) {
    SAGED_TRACE_SPAN("bench/overhead");
    benchmark::DoNotOptimize(++x);
  }
}
BENCHMARK(BM_TelemetrySpanDisabled);

void BM_TelemetrySpanEnabled(benchmark::State& state) {
  telemetry::SetEnabled(true);
  uint64_t x = 0;
  for (auto _ : state) {
    SAGED_TRACE_SPAN("bench/overhead");
    benchmark::DoNotOptimize(++x);
  }
  telemetry::SetEnabled(false);
}
BENCHMARK(BM_TelemetrySpanEnabled);

void BM_TelemetryCounterDisabled(benchmark::State& state) {
  telemetry::SetEnabled(false);
  uint64_t x = 0;
  for (auto _ : state) {
    SAGED_COUNTER_INC("bench.overhead");
    benchmark::DoNotOptimize(++x);
  }
}
BENCHMARK(BM_TelemetryCounterDisabled);

void BM_TelemetryCounterEnabled(benchmark::State& state) {
  telemetry::SetEnabled(true);
  uint64_t x = 0;
  for (auto _ : state) {
    SAGED_COUNTER_INC("bench.overhead");
    benchmark::DoNotOptimize(++x);
  }
  telemetry::SetEnabled(false);
}
BENCHMARK(BM_TelemetryCounterEnabled);

void BM_TelemetryHistogramEnabled(benchmark::State& state) {
  telemetry::SetEnabled(true);
  double v = 0.0;
  for (auto _ : state) {
    SAGED_HISTOGRAM_OBSERVE("bench.overhead_ms", v);
    v += 0.001;
    benchmark::DoNotOptimize(v);
  }
  telemetry::SetEnabled(false);
}
BENCHMARK(BM_TelemetryHistogramEnabled);

void BM_EndToEndDetection(benchmark::State& state) {
  const auto& beers = Beers();
  datagen::MakeOptions opts;
  opts.rows = 1000;
  auto adult = datagen::MakeDataset("adult", opts);
  core::SagedConfig config;
  config.w2v.dim = 6;
  config.w2v.epochs = 2;
  static auto& saged = *new core::Saged(config);
  static bool loaded = false;
  if (!loaded) {
    (void)saged.AddHistoricalDataset(adult->dirty, adult->mask);
    loaded = true;
  }
  for (auto _ : state) {
    auto result = saged.Detect(beers.dirty, core::MaskOracle(beers.mask));
    benchmark::DoNotOptimize(result->mask.DirtyCount());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(beers.dirty.NumRows() * beers.dirty.NumCols()));
}
BENCHMARK(BM_EndToEndDetection)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Substrate microbenchmarks",
                 "(see google-benchmark output above)")
