// Table 1 (dataset inventory): regenerates every evaluation dataset and
// reports rows / columns / achieved cell error rate against the paper's
// published shape. Rows are capped for bench speed (see BenchRows); the
// column counts and error rates are the reproduction targets.

#include "bench/bench_common.h"
#include "common/contracts.h"
#include "common/strings.h"

namespace saged::bench {
namespace {

void BM_Table1(benchmark::State& state) {
  const std::string name =
      datagen::AllDatasetNames()[static_cast<size_t>(state.range(0))];
  auto spec = datagen::GetDatasetSpec(name);
  SAGED_CHECK(spec.ok());
  for (auto _ : state) {
    const auto& ds = GetDataset(name);
    benchmark::DoNotOptimize(ds.mask.DirtyCount());
  }
  const auto& ds = GetDataset(name);
  state.counters["cols"] = static_cast<double>(ds.dirty.NumCols());
  state.counters["error_rate"] = ds.mask.ErrorRate();
  state.SetLabel(name);
  Record(name, StrFormat("%-14s rows=%6zu (paper %6zu)  cols=%3zu (paper %3zu)"
                         "  error_rate=%.3f (paper %.3f)",
                         name.c_str(), ds.dirty.NumRows(), spec->rows,
                         ds.dirty.NumCols(), spec->cols, ds.mask.ErrorRate(),
                         spec->error_rate));
}

BENCHMARK(BM_Table1)->DenseRange(0, 13)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Table 1: evaluation datasets",
                 "dataset        shape vs paper")
