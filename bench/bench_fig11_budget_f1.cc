// Figure 11: F1 of SAGED vs the ML-based baselines (Raha, ED2) as the
// labeling budget grows. Expected shape: SAGED ahead at small budgets; ED2
// closes the gap at large budgets on some datasets.

#include "bench/bench_common.h"
#include "common/strings.h"

namespace saged::bench {
namespace {

const std::vector<std::string>& EvalSets() {
  static const auto& v = *new std::vector<std::string>{
      "beers", "bikes", "flights", "smart_factory"};
  return v;
}

const std::vector<std::string>& Tools() {
  static const auto& v = *new std::vector<std::string>{"saged", "raha", "ed2"};
  return v;
}

void BM_Fig11(benchmark::State& state) {
  const std::string tool = Tools()[static_cast<size_t>(state.range(0))];
  const size_t budget = static_cast<size_t>(state.range(1));
  const std::string dataset = EvalSets()[static_cast<size_t>(state.range(2))];
  const auto& ds = GetDataset(dataset);

  pipeline::EvalRow row;
  for (auto _ : state) {
    if (tool == "saged") {
      row = RunSagedCell(DefaultSaged(budget), ds);
    } else {
      row = RunBaselineCell(tool, ds, budget);
    }
  }
  state.counters["f1"] = row.f1;
  state.SetLabel(dataset + "/" + tool + "/budget=" + std::to_string(budget));
  Record(StrFormat("%s/%s/%03zu", dataset.c_str(), tool.c_str(), budget),
         StrFormat("%-14s %-6s budget=%-3zu f1=%.3f", dataset.c_str(),
                   tool.c_str(), budget, row.f1));
}

BENCHMARK(BM_Fig11)
    ->ArgsProduct({{0, 1, 2}, {5, 10, 20, 40, 60}, {0, 1, 2, 3}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Figure 11: labeling budget vs F1 (SAGED / Raha / ED2)",
                 "dataset        tool   budget  f1")
