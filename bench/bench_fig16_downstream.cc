// Figure 16: downstream modeling accuracy — a neural network trained on
// (a) ground truth, (b) the dirty data, and (c) data repaired after
// detection by SAGED and by representative baselines; on Beers
// (classification), NASA (regression), and Smart Factory (classification).
// Expected shape: SAGED-repaired close to ground truth; dirty data worst;
// weaker detectors in between.

#include "bench/bench_common.h"
#include "common/contracts.h"
#include "baselines/registry.h"
#include "common/strings.h"
#include "pipeline/repair.h"

namespace saged::bench {
namespace {

struct Task {
  const char* dataset;
  const char* label_column;
  pipeline::TaskType task;
  double boosted_error_rate;  // crank errors so repair effects are visible
};

const std::vector<Task>& Tasks() {
  static const auto& v = *new std::vector<Task>{
      {"beers", "style", pipeline::TaskType::kMultiClassification, 0.25},
      {"nasa", "sound_pressure", pipeline::TaskType::kRegression, 0.3},
      {"smart_factory", "label", pipeline::TaskType::kMultiClassification,
       0.3},
  };
  return v;
}

const std::vector<std::string>& Versions() {
  static const auto& v = *new std::vector<std::string>{
      "ground_truth", "dirty", "saged", "raha", "mink", "dboost"};
  return v;
}

const datagen::Dataset& TaskDataset(const Task& task) {
  return GetDataset(task.dataset, /*rows=*/0, task.boosted_error_rate);
}

/// Downstream scores are noisy at bench scale (one split, one init); the
/// reported number is the mean over three seeds, like the paper's
/// ten-repetition means.
constexpr uint64_t kSeeds[] = {11, 13, 17};

double MeanScoreVsClean(const Table& version, const Table& clean,
                        size_t label, pipeline::TaskType task) {
  double sum = 0.0;
  for (uint64_t seed : kSeeds) {
    auto s = pipeline::DownstreamScoreVsClean(version, clean, label, task,
                                              seed);
    SAGED_CHECK(s.ok()) << s.status().ToString();
    sum += *s;
  }
  return sum / static_cast<double>(std::size(kSeeds));
}

double ScoreVersion(const Task& task, const std::string& version) {
  const auto& ds = TaskDataset(task);
  auto label = ds.clean.ColumnIndex(task.label_column);
  SAGED_CHECK(label.ok()) << task.dataset;
  if (version == "ground_truth") {
    return MeanScoreVsClean(ds.clean, ds.clean, *label, task.task);
  }
  if (version == "dirty") {
    return MeanScoreVsClean(ds.dirty, ds.clean, *label, task.task);
  }
  ErrorMask detections;
  if (version == "saged") {
    auto result =
        DefaultSaged(20).Detect(ds.dirty, core::MaskOracle(ds.mask));
    SAGED_CHECK(result.ok()) << result.status().ToString();
    detections = std::move(result->mask);
  } else {
    auto detector = baselines::MakeBaseline(version);
    SAGED_CHECK(detector.ok()) << version;
    baselines::DetectionContext ctx;
    ctx.dirty = &ds.dirty;
    ctx.rules = &ds.rules;
    ctx.domains = &ds.domains;
    ctx.oracle = core::MaskOracle(ds.mask);
    ctx.labeling_budget = 20;
    auto mask = (*detector)->Detect(ctx);
    SAGED_CHECK(mask.ok()) << mask.status().ToString();
    detections = std::move(*mask);
  }
  auto repaired = pipeline::RepairTable(ds.dirty, detections, 13);
  SAGED_CHECK(repaired.ok()) << repaired.status().ToString();
  return MeanScoreVsClean(*repaired, ds.clean, *label, task.task);
}

void BM_Fig16(benchmark::State& state) {
  const Task& task = Tasks()[static_cast<size_t>(state.range(0))];
  const std::string version = Versions()[static_cast<size_t>(state.range(1))];

  double score = 0.0;
  for (auto _ : state) {
    score = ScoreVersion(task, version);
  }
  state.counters["score"] = score;
  state.SetLabel(std::string(task.dataset) + "/" + version);
  const char* metric =
      task.task == pipeline::TaskType::kRegression ? "R2" : "macroF1";
  Record(StrFormat("%s/%02ld_%s", task.dataset, state.range(1),
                   version.c_str()),
         StrFormat("%-14s %-13s %s=%.3f", task.dataset, version.c_str(),
                   metric, score));
}

BENCHMARK(BM_Fig16)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4, 5}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace
}  // namespace saged::bench

SAGED_BENCH_MAIN("Figure 16: downstream model accuracy after repair",
                 "dataset        version       score")
