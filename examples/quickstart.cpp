// Quickstart: the complete SAGED workflow in ~40 lines.
//
//   1. Build a historical inventory (here: generated Adult + Movies data
//      whose dirty cells are known from a "prior cleaning effort").
//   2. Extract knowledge: one base model per historical column.
//   3. Detect errors in a new dirty dataset (Beers) with a 20-tuple
//      labeling budget.
//
// Run:  ./quickstart

#include <cstdio>

#include "core/detector.h"
#include "datagen/datasets.h"

int main() {
  using namespace saged;

  // Generate the historical datasets (stand-ins for your own cleaned data).
  datagen::MakeOptions gen;
  gen.rows = 2000;
  auto adult = datagen::MakeDataset("adult", gen);
  auto movies = datagen::MakeDataset("movies", gen);
  if (!adult.ok() || !movies.ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    return 1;
  }

  // Offline phase: knowledge extraction.
  core::SagedConfig config;
  config.labeling_budget = 20;
  core::Saged saged(config);
  for (const auto* hist : {&*adult, &*movies}) {
    if (auto s = saged.AddHistoricalDataset(hist->dirty, hist->mask); !s.ok()) {
      std::fprintf(stderr, "knowledge extraction failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  std::printf("knowledge base: %zu base models from %zu datasets\n",
              saged.knowledge_base().size(),
              saged.knowledge_base().NumDatasets());

  // Online phase: detect errors in a new dirty dataset. The oracle answers
  // label requests; in production this is your data steward, here it is the
  // generator's ground truth.
  auto beers = datagen::MakeDataset("beers", gen);
  if (!beers.ok()) return 1;
  auto result = saged.Detect(beers->dirty, core::MaskOracle(beers->mask));
  if (!result.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  auto score = beers->mask.Score(result->mask);
  std::printf("dataset: beers (%zu rows x %zu cols, %.1f%% dirty cells)\n",
              beers->dirty.NumRows(), beers->dirty.NumCols(),
              100.0 * beers->mask.ErrorRate());
  std::printf("labels spent: %zu tuples\n", result->labeled_tuples);
  std::printf("precision=%.3f recall=%.3f f1=%.3f  (%.2fs)\n",
              score.Precision(), score.Recall(), score.F1(), result->seconds);
  return 0;
}
