// End-to-end ML pipeline (the paper's Figure-16 setup): detect errors with
// SAGED, repair them by imputation, and compare a downstream model trained
// on (a) ground truth, (b) the dirty data, and (c) the SAGED-repaired data.
//
// Run:  ./downstream_pipeline

#include <cstdio>

#include "core/detector.h"
#include "datagen/datasets.h"
#include "pipeline/evaluation.h"

int main() {
  using namespace saged;

  // NASA airfoil data: regression of sound pressure from the test-bench
  // parameters. Crank the error rate so the repair effect is visible.
  datagen::MakeOptions gen;
  gen.rows = 1504;
  gen.error_rate = 0.3;
  auto nasa = datagen::MakeDataset("nasa", gen);
  if (!nasa.ok()) return 1;
  auto label = nasa->clean.ColumnIndex("sound_pressure");
  if (!label.ok()) return 1;

  core::SagedConfig config;
  config.labeling_budget = 20;
  datagen::MakeOptions hist_gen;
  hist_gen.rows = 2000;
  auto saged = pipeline::MakeSagedWithHistory(config, {"adult", "movies"},
                                              hist_gen);
  if (!saged.ok()) return 1;

  auto detection = saged->Detect(nasa->dirty, core::MaskOracle(nasa->mask));
  if (!detection.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 detection.status().ToString().c_str());
    return 1;
  }
  auto det_score = nasa->mask.Score(detection->mask);
  std::printf("detection: f1=%.3f (%.2fs)\n", det_score.F1(),
              detection->seconds);

  const uint64_t seed = 13;
  auto truth = pipeline::DownstreamScoreVsClean(
      nasa->clean, nasa->clean, *label, pipeline::TaskType::kRegression,
      seed);
  auto dirty = pipeline::DownstreamScoreVsClean(
      nasa->dirty, nasa->clean, *label, pipeline::TaskType::kRegression,
      seed);
  auto repaired = pipeline::DownstreamScoreWithMask(
      *nasa, detection->mask, *label, pipeline::TaskType::kRegression, seed);
  if (!truth.ok() || !dirty.ok() || !repaired.ok()) {
    std::fprintf(stderr, "downstream modeling failed\n");
    return 1;
  }

  std::printf("\ndownstream regression R^2 (NASA sound pressure):\n");
  std::printf("  ground truth    %.3f\n", *truth);
  std::printf("  dirty data      %.3f\n", *dirty);
  std::printf("  saged-repaired  %.3f\n", *repaired);
  std::printf("\nrepair recovered %.0f%% of the accuracy lost to errors\n",
              *truth - *dirty > 1e-9
                  ? 100.0 * (*repaired - *dirty) / (*truth - *dirty)
                  : 100.0);
  return 0;
}
