// The paper's running example (Section 2): historical HR datasets
// "2018-2022" are cleaned once; SAGED then finds errors in the "2023" HR
// extract — a typo'd name, a missing education entry, a mis-formatted phone
// number, and a salary outlier — and prints the flagged cells.
//
// Run:  ./hr_records

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/detector.h"
#include "data/table.h"
#include "datagen/error_injector.h"
#include "datagen/synth.h"

namespace {

using namespace saged;

/// One synthetic HR yearbook: Name, Age, Gender, Education, Phone, Salary.
/// Education drives salary so the columns carry correlated signal, like the
/// paper's Figure-1 table.
Table MakeHrYear(int year, size_t rows, Rng& rng) {
  static const std::vector<std::string> kEducation = {"HS", "Bachelor",
                                                      "Master", "PhD"};
  std::vector<Cell> name;
  std::vector<Cell> age;
  std::vector<Cell> gender;
  std::vector<Cell> education;
  std::vector<Cell> phone;
  std::vector<Cell> salary;
  for (size_t i = 0; i < rows; ++i) {
    size_t edu = rng.UniformInt(kEducation.size());
    name.push_back(datagen::SynthFullName(rng));
    age.push_back(datagen::SynthInt(rng, 22, 65));
    gender.push_back(rng.Bernoulli(0.5) ? "M" : "F");
    education.push_back(kEducation[edu]);
    phone.push_back(datagen::SynthPhone(rng));
    salary.push_back(datagen::SynthInt(
        rng, 40000 + static_cast<int64_t>(edu) * 12000,
        60000 + static_cast<int64_t>(edu) * 15000));
  }
  Table t("hr_" + std::to_string(year));
  (void)t.AddColumn(Column("name", std::move(name)));
  (void)t.AddColumn(Column("age", std::move(age)));
  (void)t.AddColumn(Column("gender", std::move(gender)));
  (void)t.AddColumn(Column("education", std::move(education)));
  (void)t.AddColumn(Column("phone", std::move(phone)));
  (void)t.AddColumn(Column("salary", std::move(salary)));
  return t;
}

}  // namespace

int main() {
  Rng rng(2023);

  // Corruption profile shared by all HR yearbooks (comparable error
  // profiles are exactly what SAGED's meta-learning exploits).
  datagen::InjectionSpec spec;
  spec.error_rate = 0.08;
  spec.types = {datagen::ErrorType::kMissingValue, datagen::ErrorType::kTypo,
                datagen::ErrorType::kOutlier, datagen::ErrorType::kFormatting};

  core::SagedConfig config;
  config.labeling_budget = 15;
  core::Saged saged(config);

  // Historical inventory: HR 2018..2022, "cleaned" once (= labels known).
  for (int year = 2018; year <= 2022; ++year) {
    Table clean = MakeHrYear(year, 800, rng);
    datagen::ErrorInjector injector(spec, static_cast<uint64_t>(year));
    auto hist = injector.Inject(clean);
    if (!hist.ok()) return 1;
    if (auto s = saged.AddHistoricalDataset(hist->dirty, hist->mask); !s.ok()) {
      std::fprintf(stderr, "extraction failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("ingested hr_%d (%zu rows)\n", year, clean.NumRows());
  }

  // The new 2023 extract arrives dirty; nobody has cleaned it yet.
  Table clean_2023 = MakeHrYear(2023, 400, rng);
  datagen::ErrorInjector injector(spec, 2023);
  auto extract = injector.Inject(clean_2023);
  if (!extract.ok()) return 1;

  auto result =
      saged.Detect(extract->dirty, core::MaskOracle(extract->mask));
  if (!result.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  auto score = extract->mask.Score(result->mask);
  std::printf("\nhr_2023: precision=%.3f recall=%.3f f1=%.3f (%.2fs, %zu labels)\n\n",
              score.Precision(), score.Recall(), score.F1(), result->seconds,
              result->labeled_tuples);

  // Per-column explanation: which historical yearbooks' models were
  // consulted and how each column decided.
  std::printf("column diagnostics:\n");
  for (const auto& diag : result->diagnostics) {
    std::printf("  %-10s flagged=%-3zu threshold=%.2f %s sources=%zu (e.g. %s)\n",
                diag.column.c_str(), diag.flagged_cells, diag.threshold,
                diag.used_fallback ? "vote-fallback" : "meta-classifier",
                diag.matched_sources.size(),
                diag.matched_sources.empty()
                    ? "-"
                    : diag.matched_sources.front().c_str());
  }

  // Show the first few flagged cells with their suspected values.
  std::printf("\nsample of flagged cells:\n");
  size_t shown = 0;
  for (size_t r = 0; r < extract->dirty.NumRows() && shown < 12; ++r) {
    for (size_t c = 0; c < extract->dirty.NumCols() && shown < 12; ++c) {
      if (!result->mask.IsDirty(r, c)) continue;
      const char* verdict = extract->mask.IsDirty(r, c) ? "true error"
                                                        : "false alarm";
      std::printf("  (R%zu, %s) = '%s'  [%s]\n", r + 1,
                  extract->dirty.column(c).name().c_str(),
                  extract->dirty.cell(r, c).c_str(), verdict);
      ++shown;
    }
  }
  return 0;
}
