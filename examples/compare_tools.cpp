// Side-by-side comparison of SAGED and every baseline tool on one dataset —
// a single row of the paper's Table 2.
//
// Run:  ./compare_tools [dataset] [rows] [budget]
//   e.g. ./compare_tools flights 1000 20

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/registry.h"
#include "datagen/datasets.h"
#include "pipeline/evaluation.h"

int main(int argc, char** argv) {
  using namespace saged;

  std::string dataset = argc > 1 ? argv[1] : "beers";
  size_t rows = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 1000;
  size_t budget = argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 20;

  datagen::MakeOptions gen;
  gen.rows = rows;
  auto ds = datagen::MakeDataset(dataset, gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'; options:\n", dataset.c_str());
    for (const auto& name : datagen::AllDatasetNames()) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 1;
  }
  std::printf("dataset %s: %zu rows x %zu cols, %.1f%% dirty, budget %zu\n\n",
              dataset.c_str(), ds->dirty.NumRows(), ds->dirty.NumCols(),
              100.0 * ds->mask.ErrorRate(), budget);
  std::printf("%-12s %10s %10s %10s %12s\n", "tool", "precision", "recall",
              "f1", "time[s]");

  // SAGED with the paper's default historical inventory (Adult + Movies).
  core::SagedConfig config;
  config.labeling_budget = budget;
  datagen::MakeOptions hist_gen;
  hist_gen.rows = std::min<size_t>(rows * 4, 4000);
  auto saged = pipeline::MakeSagedWithHistory(config, {"adult", "movies"},
                                              hist_gen);
  if (!saged.ok()) {
    std::fprintf(stderr, "SAGED setup failed: %s\n",
                 saged.status().ToString().c_str());
    return 1;
  }
  if (auto row = pipeline::RunSaged(*saged, *ds); row.ok()) {
    std::printf("%-12s %10.3f %10.3f %10.3f %12.2f\n", "saged",
                row->precision, row->recall, row->f1, row->seconds);
  }

  for (const auto& name : baselines::AllBaselineNames()) {
    auto row = pipeline::RunBaseline(name, *ds, budget, 7);
    if (!row.ok()) {
      std::printf("%-12s failed: %s\n", name.c_str(),
                  row.status().ToString().c_str());
      continue;
    }
    std::printf("%-12s %10.3f %10.3f %10.3f %12.2f\n", name.c_str(),
                row->precision, row->recall, row->f1, row->seconds);
  }
  return 0;
}
