# Fallback for the check-coverage target when gcovr is not installed:
# aggregates raw `gcov -n` line summaries over every .gcda the test run left
# in the build tree, restricted to files under src/, and prints one overall
# line-coverage figure. Invoked as
#   cmake -DSAGED_BINARY_DIR=... -DSAGED_SOURCE_DIR=... -P GcovSummary.cmake
#
# Optional -DSAGED_FEATURES_FLOOR=NN (integer percent): also aggregates a
# src/features/-only figure (the featurization hot path: dictionary encoder,
# batched kernels, featurizer) and fails when it drops below the floor —
# the gcovr branch of check-coverage enforces the same floor with
# --fail-under-line.

if(NOT SAGED_BINARY_DIR OR NOT SAGED_SOURCE_DIR)
  message(FATAL_ERROR "GcovSummary.cmake needs SAGED_BINARY_DIR and "
                      "SAGED_SOURCE_DIR")
endif()

find_program(GCOV_EXE gcov)
if(NOT GCOV_EXE)
  message(FATAL_ERROR "neither gcovr nor gcov found; install one to use "
                      "check-coverage")
endif()

file(GLOB_RECURSE GCDA_FILES "${SAGED_BINARY_DIR}/*.gcda")
if(NOT GCDA_FILES)
  message(FATAL_ERROR "no .gcda files under ${SAGED_BINARY_DIR}; configure "
                      "with -DSAGED_COVERAGE=ON and run the tests first")
endif()

set(total_lines 0)
set(covered_hundredths 0)  # sum of pct*n in hundredths-of-a-line units
set(stanzas 0)
set(features_lines 0)
set(features_covered_hundredths 0)

foreach(gcda ${GCDA_FILES})
  execute_process(
    COMMAND ${GCOV_EXE} -n ${gcda}
    OUTPUT_VARIABLE out
    ERROR_QUIET
    WORKING_DIRECTORY ${SAGED_BINARY_DIR})
  # gcov -n emits stanzas of the form:
  #   File '<path>'
  #   Lines executed:NN.NN% of MMM
  string(REPLACE "\n" ";" lines "${out}")
  set(current_file "")
  foreach(line ${lines})
    if(line MATCHES "^File '(.*)'$")
      set(current_file "${CMAKE_MATCH_1}")
    elseif(line MATCHES "^Lines executed:([0-9]+)\\.([0-9][0-9])% of ([0-9]+)$")
      # Capture groups before any further MATCHES (which would clobber them).
      set(pct_whole "${CMAKE_MATCH_1}")
      set(pct_frac "${CMAKE_MATCH_2}")
      set(n "${CMAKE_MATCH_3}")
      if(current_file MATCHES "src/")
        math(EXPR stanzas "${stanzas} + 1")
        # Integer-only CMake math: carry the percentage as an integer number
        # of hundredths (87.50% -> 8750).
        math(EXPR pct_hundredths "${pct_whole} * 100 + ${pct_frac}")
        math(EXPR total_lines "${total_lines} + ${n}")
        math(EXPR covered_hundredths
             "${covered_hundredths} + ${pct_hundredths} * ${n}")
        if(current_file MATCHES "src/features/")
          math(EXPR features_lines "${features_lines} + ${n}")
          math(EXPR features_covered_hundredths
               "${features_covered_hundredths} + ${pct_hundredths} * ${n}")
        endif()
      endif()
    endif()
  endforeach()
endforeach()

if(total_lines EQUAL 0)
  message(FATAL_ERROR "gcov reported no lines under src/")
endif()
math(EXPR overall_pct "${covered_hundredths} / (${total_lines} * 100)")
message(STATUS "coverage: ~${overall_pct}% of ${total_lines} lines across "
               "${stanzas} instrumented src/ file stanzas "
               "(approximate; install gcovr for exact per-file tables)")

if(features_lines GREATER 0)
  math(EXPR features_pct
       "${features_covered_hundredths} / (${features_lines} * 100)")
  message(STATUS "coverage[src/features/]: ~${features_pct}% of "
                 "${features_lines} lines")
  if(DEFINED SAGED_FEATURES_FLOOR)
    if(features_pct LESS ${SAGED_FEATURES_FLOOR})
      message(FATAL_ERROR
              "src/features/ line coverage ~${features_pct}% fell below the "
              "floor ${SAGED_FEATURES_FLOOR}% — the featurization hot path "
              "(dictionary.cc, kernels.cc, kernels_simd.cc, featurizer.cc) "
              "lost test coverage; extend the parity wall before raising "
              "risk here")
    endif()
  endif()
elseif(DEFINED SAGED_FEATURES_FLOOR)
  message(FATAL_ERROR "no instrumented src/features/ stanzas found but a "
                      "SAGED_FEATURES_FLOOR was requested")
endif()
