# Perf self-consistency smoke (see bench/CMakeLists.txt and the check-perf
# target): run BENCH twice into WORK_DIR/a and WORK_DIR/b, then REPORT must
# find no regression between the two `<tool>-last.json` manifests. The huge
# threshold makes the test about plumbing (flags honored, manifests written,
# comparator parses them), not machine noise.
foreach(var BENCH REPORT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "PerfSmoke.cmake needs -D${var}=...")
  endif()
endforeach()
# Which benchmark cells to run; default keeps the historical Table-1 cell.
if(NOT DEFINED FILTER)
  set(FILTER "BM_Table1/0")
endif()
# Extra saged_report arguments, ','-separated (a ';' list would need
# escaping through the add_test -> cmake -D boundary, where the escape
# itself survives and defeats the split), e.g. quality floors:
# -DREPORT_ARGS=--floor,metrics/kb.recall_at_max=0.95
if(NOT DEFINED REPORT_ARGS)
  set(REPORT_ARGS "")
endif()
string(REPLACE "," ";" REPORT_ARGS "${REPORT_ARGS}")

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

foreach(run a b)
  execute_process(
    COMMAND ${BENCH} --benchmark_filter=${FILTER}
            --out-dir ${WORK_DIR}/${run}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench run '${run}' failed (${rc}):\n${out}\n${err}")
  endif()
  if(NOT EXISTS ${WORK_DIR}/${run}/runs/ledger.jsonl)
    message(FATAL_ERROR "bench run '${run}' wrote no run ledger:\n${out}")
  endif()
endforeach()

get_filename_component(tool ${BENCH} NAME)
execute_process(
  COMMAND ${REPORT} ${WORK_DIR}/a/runs/${tool}-last.json
          ${WORK_DIR}/b/runs/${tool}-last.json --threshold 1000
          ${REPORT_ARGS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
message(STATUS "saged_report:\n${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "saged_report flagged back-to-back runs of the same bench "
          "(exit ${rc}):\n${out}\n${err}")
endif()
